"""FEOL extraction: what an untrusted foundry actually sees.

Given a routed :class:`~repro.layout.layout.Layout` and a split layer, the
FEOL view contains:

* every placed cell with its library master (the foundry fabricates them);
* every net whose routing stays at or below the split layer, in full;
* for every net that crosses the split layer, one **vpin** per open terminal:
  the via stack position in the topmost FEOL layer, whether it is a driver or
  a sink terminal, which gate/pin it belongs to, the direction its dangling
  stub points in, and the electrical facts an attacker can derive from the
  cell library (pin capacitance, driver strength).

The ground-truth pairing (which sink vpin belongs to which driver vpin) is
carried alongside for *scoring only* — attack implementations never read it.

A key subtlety for the paper's protected layouts: the FEOL of those layouts
was placed and routed for the *erroneous* netlist, so the dangling-stub
directions recorded here point towards the erroneous partners (the
``source_hint`` / ``target_hint`` fields the protection flow sets), not the
true ones.  For honest layouts the hints coincide with the true partners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.layout.arrays import UniformGridIndex
from repro.layout.geometry import Point
from repro.layout.layout import Layout
from repro.layout.router import RoutedConnection

#: Number of discrete compass directions a dangling stub reveals.  A real
#: stub tells an attacker only the rough heading of the missing wire, so the
#: direction hint is quantized (Wang et al. use the same kind of coarse
#: directional information).
DIRECTION_QUANTIZATION = 8

#: Fraction of the way towards the route's continuation that the dangling
#: FEOL stub of a cut connection extends.  In a real layout the lower-layer
#: escape routing and the partially-routed FEOL segments of a cut net carry
#: it a good part of the way towards its BEOL continuation; the vpin (the via
#: location in the topmost FEOL layer) therefore sits *between* the owning
#: cell and the missing partner, which is precisely the proximity leverage
#: the attacks of Wang et al. and Magaña et al. exploit.  For the paper's
#: protected layouts the continuation recorded in the FEOL is the *erroneous*
#: one, so the same mechanism actively misleads the attacker.
DEFAULT_STUB_FRACTION = 0.47


def _quantized_direction(source: Point, towards: Point) -> Optional[Tuple[float, float]]:
    """Unit vector from ``source`` towards ``towards``, snapped to 8 compass points."""
    dx = towards.x - source.x
    dy = towards.y - source.y
    if abs(dx) < 1e-9 and abs(dy) < 1e-9:
        return None
    angle = math.atan2(dy, dx)
    step = 2.0 * math.pi / DIRECTION_QUANTIZATION
    snapped = round(angle / step) * step
    return (math.cos(snapped), math.sin(snapped))


@dataclass(frozen=True)
class VPin:
    """An open terminal in the topmost FEOL layer."""

    identifier: int
    kind: str  # "driver" or "sink"
    position: Point
    gate: Optional[str]  # owning gate instance; None for an I/O port terminal
    pin: Optional[str]  # gate pin name, or the port name for I/O terminals
    cell: Optional[str]  # library cell of the owning gate (attacker knows masters)
    direction: Optional[Tuple[float, float]]  # dangling-stub heading (unit vector)
    capacitance_ff: float = 0.0  # sink pin load
    max_load_ff: float = 0.0  # driver drive capability
    drive_resistance_kohm: float = 0.0
    #: FEOL net the open via belongs to.  The attacker can see which dangling
    #: stubs are electrically connected below the split, so this is an
    #: observable (opaque) identifier, not ground truth.
    net: Optional[str] = None


@dataclass
class OpenConnection:
    """Ground truth for one cut driver→sink connection (scoring only)."""

    net: str
    driver_vpin: int
    sink_vpin: int
    protected: bool


@dataclass
class FEOLView:
    """Everything below the split layer, as seen by the FEOL foundry."""

    layout: Layout
    split_layer: int
    #: Nets fully routed at or below the split layer (attacker sees them whole).
    visible_nets: Set[str] = field(default_factory=set)
    #: Nets with at least one connection crossing the split layer.
    cut_nets: Set[str] = field(default_factory=set)
    driver_vpins: List[VPin] = field(default_factory=list)
    sink_vpins: List[VPin] = field(default_factory=list)
    #: Ground-truth pairing, for scoring only.
    open_connections: List[OpenConnection] = field(default_factory=list)
    #: Monotonic counter keying the cached columnar view (see
    #: :func:`feol_arrays`): any in-place edit of the vpin lists after
    #: extraction — replacing vpins, re-aiming directions — must call
    #: :meth:`bump_geometry_version`, mirroring the contract on
    #: ``PlacementResult`` / ``Layout``.
    geometry_version: int = 0

    def bump_geometry_version(self) -> int:
        """Record an in-place vpin mutation (invalidates the cached arrays)."""
        self.geometry_version += 1
        return self.geometry_version

    @property
    def num_vpins(self) -> int:
        return len(self.driver_vpins) + len(self.sink_vpins)

    def vpins_of_kind(self, kind: str) -> List[VPin]:
        if kind == "driver":
            return self.driver_vpins
        if kind == "sink":
            return self.sink_vpins
        raise ValueError(f"unknown vpin kind {kind!r}")

    def true_driver_of_sink(self) -> Dict[int, int]:
        """Map sink-vpin id → true driver-vpin id (scoring helper)."""
        return {oc.sink_vpin: oc.driver_vpin for oc in self.open_connections}

    def driver_vpin_nets(self) -> Dict[int, str]:
        """Map driver-vpin id → the FEOL net it belongs to."""
        return {
            vpin.identifier: vpin.net
            for vpin in self.driver_vpins
            if vpin.net is not None
        }

    def protected_sink_vpins(self) -> Set[int]:
        """Sink vpins belonging to nets the defense randomized."""
        return {oc.sink_vpin for oc in self.open_connections if oc.protected}

    def stats(self) -> Dict[str, float]:
        return {
            "split_layer": self.split_layer,
            "visible_nets": len(self.visible_nets),
            "cut_nets": len(self.cut_nets),
            "driver_vpins": len(self.driver_vpins),
            "sink_vpins": len(self.sink_vpins),
            "open_connections": len(self.open_connections),
        }

    def arrays(self) -> "FEOLArrays":
        """The cached columnar view of this FEOL view (see :func:`feol_arrays`)."""
        return feol_arrays(self)

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_geometry_cache", None)  # cached arrays are rebuilt lazily
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass
class FEOLArrays:
    """Array-backed view of a :class:`FEOLView`'s open vpins.

    Driver and sink columns follow ``view.driver_vpins`` /
    ``view.sink_vpins`` list order, so first-occurrence index semantics are
    preserved.  ``*_gate_idx`` maps owning gates to small integers shared
    between the two sides (``-1`` for I/O terminals), which lets the attacks
    compare gate identity without string broadcasting.
    """

    driver_ids: np.ndarray       # (d,) int64 vpin identifiers
    driver_xy: np.ndarray        # (d, 2) float64
    driver_dir: np.ndarray       # (d, 2) float64, (0, 0) when absent
    driver_has_dir: np.ndarray   # (d,) bool
    driver_max_load: np.ndarray  # (d,) float64
    driver_gate_idx: np.ndarray  # (d,) int64, -1 for port terminals
    sink_ids: np.ndarray         # (s,) int64
    sink_xy: np.ndarray          # (s, 2) float64
    sink_dir: np.ndarray         # (s, 2) float64
    sink_has_dir: np.ndarray     # (s,) bool
    sink_cap: np.ndarray         # (s,) float64
    sink_gate_idx: np.ndarray    # (s,) int64
    _driver_grid: Optional[UniformGridIndex] = field(default=None, repr=False)

    def driver_grid(self) -> UniformGridIndex:
        """Lazily built spatial index over the driver-vpin positions."""
        if self._driver_grid is None:
            self._driver_grid = UniformGridIndex(self.driver_xy)
        return self._driver_grid

    @staticmethod
    def build(view: "FEOLView") -> "FEOLArrays":
        gate_index: Dict[str, int] = {}

        def gate_of(vpin: VPin) -> int:
            if vpin.gate is None:
                return -1
            return gate_index.setdefault(vpin.gate, len(gate_index))

        def columns(vpins: List[VPin]):
            ids = np.asarray([v.identifier for v in vpins], dtype=np.int64)
            if vpins:
                xy = np.asarray(
                    [(v.position.x, v.position.y) for v in vpins], dtype=np.float64
                )
                direction = np.asarray(
                    [v.direction if v.direction is not None else (0.0, 0.0)
                     for v in vpins],
                    dtype=np.float64,
                )
            else:
                xy = np.empty((0, 2), dtype=np.float64)
                direction = np.empty((0, 2), dtype=np.float64)
            has_dir = np.asarray(
                [v.direction is not None for v in vpins], dtype=bool
            )
            gates = np.asarray([gate_of(v) for v in vpins], dtype=np.int64)
            return ids, xy, direction, has_dir, gates

        d_ids, d_xy, d_dir, d_has, d_gates = columns(view.driver_vpins)
        s_ids, s_xy, s_dir, s_has, s_gates = columns(view.sink_vpins)
        return FEOLArrays(
            driver_ids=d_ids,
            driver_xy=d_xy,
            driver_dir=d_dir,
            driver_has_dir=d_has,
            driver_max_load=np.asarray(
                [v.max_load_ff for v in view.driver_vpins], dtype=np.float64
            ),
            driver_gate_idx=d_gates,
            sink_ids=s_ids,
            sink_xy=s_xy,
            sink_dir=s_dir,
            sink_has_dir=s_has,
            sink_cap=np.asarray(
                [v.capacitance_ff for v in view.sink_vpins], dtype=np.float64
            ),
            sink_gate_idx=s_gates,
        )


def feol_arrays(view: FEOLView) -> FEOLArrays:
    """Return (and cache) the :class:`FEOLArrays` view of ``view``.

    FEOL views are normally immutable once :func:`extract_feol` returns; the
    cache keys on ``view.geometry_version`` (bump it after any in-place vpin
    edit) with the vpin counts as an extra safety net against list growth.
    """
    key = (view.geometry_version, len(view.driver_vpins), len(view.sink_vpins))
    cached = view.__dict__.get("_geometry_cache")
    if cached is not None and cached[0] == key:
        return cached[1]
    arrays = FEOLArrays.build(view)
    view.__dict__["_geometry_cache"] = (key, arrays)
    return arrays


def _connection_is_cut(connection: RoutedConnection, split_layer: int) -> bool:
    """A connection is cut when its lateral routing runs above the split layer."""
    return connection.h_layer > split_layer or connection.v_layer > split_layer


def _stub_tip(anchor: Point, towards: Optional[Point], stub_fraction: float) -> Point:
    """Position of the dangling-stub tip: part of the way from ``anchor`` to ``towards``."""
    if towards is None or stub_fraction <= 0.0:
        return anchor
    fraction = min(max(stub_fraction, 0.0), 0.5)
    return Point(
        anchor.x + fraction * (towards.x - anchor.x),
        anchor.y + fraction * (towards.y - anchor.y),
    )


def extract_feol(layout: Layout, split_layer: int,
                 stub_fraction: float = DEFAULT_STUB_FRACTION) -> FEOLView:
    """Build the FEOL view of ``layout`` for a split after ``split_layer``.

    Args:
        layout: A routed layout (original, naively lifted, or protected).
        split_layer: Topmost FEOL metal layer (e.g. 3 → split after M3).
        stub_fraction: How far (as a fraction of the distance to the route's
            FEOL continuation target) the dangling stubs extend; see
            :data:`DEFAULT_STUB_FRACTION`.  Clamped to [0, 0.5]; 0 places every
            vpin directly at its cell.

    Returns:
        A populated :class:`FEOLView`.
    """
    if split_layer < 1:
        raise ValueError("split_layer must be >= 1")
    view = FEOLView(layout=layout, split_layer=split_layer)
    netlist = layout.netlist
    next_id = 0

    for net_name, routed in layout.routing.items():
        cut_connections = [
            c for c in routed.connections if _connection_is_cut(c, split_layer)
        ]
        if not cut_connections:
            view.visible_nets.add(net_name)
            continue
        view.cut_nets.add(net_name)
        protected = net_name in layout.protected_nets
        net = netlist.nets[net_name]

        driver_gate: Optional[str] = None
        driver_pin: Optional[str] = None
        driver_cell = None
        if net.driver is not None:
            driver_gate, driver_pin = net.driver
            driver_cell = netlist.gates[driver_gate].cell
        elif net.is_primary_input:
            driver_pin = net_name
        source = routed.driver_point if routed.driver_point is not None else Point(0.0, 0.0)

        for connection in cut_connections:
            # Driver-side vpin of this connection: one open via per cut
            # connection on the driver's FEOL trunk, its stub heading where
            # the FEOL routing of this connection was actually going
            # (the erroneous partner for protected nets).
            hint = connection.source_hint
            driver_position = _stub_tip(source, hint, stub_fraction)
            driver_vpin = VPin(
                identifier=next_id,
                kind="driver",
                position=driver_position,
                gate=driver_gate,
                pin=driver_pin,
                cell=driver_cell.name if driver_cell is not None else None,
                direction=(
                    _quantized_direction(driver_position, hint) if hint is not None else None
                ),
                max_load_ff=driver_cell.max_load_ff if driver_cell is not None else 1e9,
                drive_resistance_kohm=(
                    driver_cell.drive_resistance_kohm if driver_cell is not None else 0.0
                ),
                net=net_name,
            )
            next_id += 1
            view.driver_vpins.append(driver_vpin)

            sink_gate: Optional[str] = None
            sink_pin: Optional[str] = None
            sink_cell = None
            cap = 0.0
            if connection.sink[0] == "PO":
                sink_pin = connection.sink[1]
            else:
                sink_gate, sink_pin = connection.sink
                sink_cell = netlist.gates[sink_gate].cell
                cap = sink_cell.pin(sink_pin).capacitance_ff
            hint = connection.target_hint
            sink_position = _stub_tip(connection.target, hint, stub_fraction)
            sink_vpin = VPin(
                identifier=next_id,
                kind="sink",
                position=sink_position,
                gate=sink_gate,
                pin=sink_pin,
                cell=sink_cell.name if sink_cell is not None else None,
                direction=(
                    _quantized_direction(sink_position, hint)
                    if hint is not None else None
                ),
                capacitance_ff=cap,
                net=net_name,
            )
            next_id += 1
            view.sink_vpins.append(sink_vpin)
            view.open_connections.append(
                OpenConnection(
                    net=net_name,
                    driver_vpin=driver_vpin.identifier,
                    sink_vpin=sink_vpin.identifier,
                    # Only the connections the defense actually randomized are
                    # scored as "protected"; other (honest) sinks of the same
                    # net are ordinary cut connections.
                    protected=protected and connection.protected,
                )
            )
    return view
