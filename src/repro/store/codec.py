"""Columnar (de)serialization of scheme builds for the artefact store.

A stored build is split into two parts, mirroring the PR-6 skeleton/delta
protocol the pool workers already use:

* a **skeleton record** — the structural columns that are implied by the
  netlist and the routing topology: which net each routed entry belongs to,
  the sink reference of every 2-pin connection, the per-connection segment
  and via counts.  Everything here is an *index* into the deterministic
  regeneration of the benchmark netlist (``get_benchmark(benchmark,
  netlist_seed, scale)``), so no gate or net name is ever stored twice;
* the **coordinate columns** — flat ``float64`` arrays of placement
  positions and routed segment/via geometry.  ``float64`` survives the
  ``.npz`` round trip bit-exactly, which is what makes a disk-loaded build
  indistinguishable from the in-memory one.

:func:`encode_build` flattens a :class:`~repro.api.schemes.SchemeBuild`
into ``(record, arrays)`` — a JSON-compatible metadata record plus a dict
of NumPy arrays — and :func:`decode_build` reverses it against a freshly
regenerated netlist.  Both directions stay columnar on column-backed
routings: encode copies the :class:`~repro.layout.arrays.RoutingArrays`
columns near-verbatim into the payload, and decode keeps the payload
columns as a fresh ``RoutingArrays`` behind lazy
:class:`~repro.layout.router.RoutedNet` shells — per-object geometry is
only materialized if a consumer of the loaded build touches it.  Routings
without a clean column backing (hand-assembled nets, mutated object
graphs) take the retained object-walk encode path; both paths produce
byte-identical payloads.

Builds that carry state the columnar format cannot represent — today the
``proposed`` scheme's full :class:`~repro.core.flow.ProtectionResult` —
raise :class:`UnstorableBuild`; callers degrade to the plain in-memory
path.  A payload that *should* decode but does not (truncated arrays,
foreign netlist, future format) raises :class:`CodecError` /
:class:`StaleEntry`, which the store layer turns into quarantine-and-
rebuild, never a crash.

Bit-exactness gates baked into every decode:

* the **netlist fingerprint** — a SHA-256 over the regenerated netlist's
  complete structure (gate order, cells, connectivity, ports) must equal
  the fingerprint recorded at encode time.  Any change to the benchmark
  generators invalidates every entry they produced, by construction;
* ``topology_version`` of the regenerated netlist and the recorded
  placement/layout ``geometry_version`` counters are carried through, so
  the columnar-view invalidation contract keeps working on loaded builds.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.layout.arrays import RoutingArrays, routing_backing
from repro.layout.floorplan import Floorplan
from repro.layout.geometry import Point, Rect
from repro.layout.layout import Layout
from repro.layout.placer import PlacementResult, PlacerConfig
from repro.netlist.netlist import Netlist

#: Bump on ANY change to the payload schema or to the meaning of a stored
#: column.  Entries written under a different format version never decode —
#: they are treated as misses (see ``repro.store.store``).  The rules:
#: adding arrays/record keys that old readers would silently ignore is NOT
#: compatible (bit-exactness would be unverifiable) — every schema change
#: bumps this constant.
CODEC_FORMAT_VERSION = 1


class UnstorableBuild(Exception):
    """The build holds state the columnar payload cannot represent.

    Not an error condition: callers skip the disk tier for such builds and
    keep them purely in memory.
    """


class CodecError(Exception):
    """A payload that should decode does not (corrupt / truncated / foreign)."""


class StaleEntry(CodecError):
    """The payload decodes but its invalidation gates no longer match.

    Raised when the regenerated netlist's fingerprint or
    ``topology_version`` differs from the recorded one — i.e. the benchmark
    generator (or a structural-edit path feeding it) changed since the
    entry was written.
    """


# ---------------------------------------------------------------------------
# Netlist fingerprint
# ---------------------------------------------------------------------------

#: Fingerprint memo keyed by netlist identity, invalidated through the
#: netlist's own ``topology_version`` edit counter — the same contract the
#: vectorized simulation engine keys its compiled-plan caches on.  A seed
#: sweep replays N entries against ONE regenerated netlist; without the memo
#: every load re-hashes the full structure.
_fingerprint_memo: "weakref.WeakKeyDictionary[Netlist, Tuple[int, str]]" = (
    weakref.WeakKeyDictionary()
)


def netlist_fingerprint(netlist: Netlist) -> str:
    """SHA-256 over the netlist's complete structure, order included.

    Gate and net *iteration order* is part of the fingerprint: the codec
    stores positions and routing as indices into ``list(netlist.gates)`` /
    ``list(netlist.nets)``, so a reordered regeneration is as stale as a
    rewired one.
    """
    cached = _fingerprint_memo.get(netlist)
    if cached is not None and cached[0] == netlist.topology_version:
        return cached[1]
    doc = {
        "name": netlist.name,
        "gates": [
            [g.name, g.cell.name, sorted(g.connections.items()), bool(g.dont_touch)]
            for g in netlist.gates.values()
        ],
        "nets": [
            [
                n.name,
                list(n.driver) if n.driver is not None else None,
                [list(sink) for sink in n.sinks],
                bool(n.is_primary_input),
                list(n.primary_outputs),
            ]
            for n in netlist.nets.values()
        ],
        "primary_inputs": list(netlist.primary_inputs),
        "primary_outputs": list(netlist.primary_outputs),
        "output_nets": sorted(netlist.output_nets.items()),
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    _fingerprint_memo[netlist] = (netlist.topology_version, digest)
    return digest


# ---------------------------------------------------------------------------
# JSON-safe metadata encoding (tuples survive the round trip)
# ---------------------------------------------------------------------------

_SCALARS = (str, int, float, bool, type(None))


def _encode_jsonable(value: Any) -> Any:
    """Encode free-form metadata so the round trip is type-exact.

    JSON alone would flatten tuples into lists; layouts put tuples in their
    ``metadata`` (e.g. swapped port pairs), and the bit-identical contract
    covers them.  Anything outside the supported closed set raises
    :class:`UnstorableBuild`.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_jsonable(v) for v in value]}
    if isinstance(value, list):
        return [_encode_jsonable(v) for v in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise UnstorableBuild(
                    f"metadata mapping key {key!r} is not a string"
                )
        return {key: _encode_jsonable(v) for key, v in value.items()}
    raise UnstorableBuild(
        f"metadata value of type {type(value).__name__} is not storable"
    )


def _decode_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_decode_jsonable(v) for v in value["__tuple__"])
        return {key: _decode_jsonable(v) for key, v in value.items()}
    if isinstance(value, list):
        return [_decode_jsonable(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Layout encoding
# ---------------------------------------------------------------------------

def _encode_layout(layout: Layout, netlist: Netlist,
                   arrays: Dict[str, np.ndarray], prefix: str) -> Dict[str, Any]:
    gate_index = {name: i for i, name in enumerate(netlist.gates)}
    net_index = {name: i for i, name in enumerate(netlist.nets)}

    placement = layout.placement
    try:
        gate_order = np.fromiter(
            (gate_index[name] for name in placement.gate_positions),
            dtype=np.int64, count=len(placement.gate_positions),
        )
    except KeyError as error:
        raise UnstorableBuild(f"placement gate {error} unknown to the netlist")
    arrays[prefix + "gate_order"] = gate_order
    arrays[prefix + "gate_x"] = np.fromiter(
        (p.x for p in placement.gate_positions.values()),
        dtype=np.float64, count=len(placement.gate_positions),
    )
    arrays[prefix + "gate_y"] = np.fromiter(
        (p.y for p in placement.gate_positions.values()),
        dtype=np.float64, count=len(placement.gate_positions),
    )
    arrays[prefix + "port_names"] = np.array(
        list(placement.port_positions), dtype=np.str_
    )
    arrays[prefix + "port_x"] = np.fromiter(
        (p.x for p in placement.port_positions.values()),
        dtype=np.float64, count=len(placement.port_positions),
    )
    arrays[prefix + "port_y"] = np.fromiter(
        (p.y for p in placement.port_positions.values()),
        dtype=np.float64, count=len(placement.port_positions),
    )

    # -- routing: skeleton columns + coordinate columns --------------------
    backing = routing_backing(layout.routing)
    if backing is not None:
        # Column-backed routing that was never materialized: the payload is
        # a near-copy of the columns (byte-identical to the object walk
        # below), no Segment/Via/RoutedConnection object ever built.
        _encode_routing_fast(backing, net_index, gate_index, arrays, prefix)
        return _layout_record(layout, netlist, net_index, arrays, prefix)

    rnet_net: List[int] = []
    rnet_driver = np.empty((len(layout.routing), 2), dtype=np.float64)
    rnet_has_driver: List[bool] = []
    rnet_conn_count: List[int] = []
    rnet_dvia_count: List[int] = []
    sink_tokens: Dict[str, int] = {}
    conn_net: List[int] = []
    conn_sink_gate: List[int] = []
    conn_sink_token: List[int] = []
    conn_layers: List[Tuple[int, int]] = []
    conn_coords: List[Tuple[float, float, float, float]] = []
    conn_hints: List[Tuple[float, float, float, float]] = []
    conn_hint_mask: List[Tuple[bool, bool]] = []
    conn_protected: List[bool] = []
    conn_seg_count: List[int] = []
    conn_via_count: List[int] = []
    seg_rows: List[Tuple[int, float, float, float, float]] = []
    via_rows: List[Tuple[float, float, int]] = []
    dvia_rows: List[Tuple[float, float, int]] = []

    def token(text: str) -> int:
        return sink_tokens.setdefault(text, len(sink_tokens))

    try:
        for index, (net_name, routed) in enumerate(layout.routing.items()):
            rnet_net.append(net_index[net_name])
            if routed.name != net_name:
                raise UnstorableBuild(
                    f"routed net {routed.name!r} stored under key {net_name!r}"
                )
            if routed.driver_point is not None:
                rnet_has_driver.append(True)
                rnet_driver[index, 0] = routed.driver_point.x
                rnet_driver[index, 1] = routed.driver_point.y
            else:
                rnet_has_driver.append(False)
                rnet_driver[index, 0] = rnet_driver[index, 1] = 0.0
            rnet_conn_count.append(len(routed.connections))
            rnet_dvia_count.append(len(routed.driver_vias))
            for via in routed.driver_vias:
                dvia_rows.append((via.x, via.y, via.lower))
            for conn in routed.connections:
                conn_net.append(net_index[conn.net])
                first, second = conn.sink
                if first == "PO":
                    conn_sink_gate.append(-1)
                else:
                    conn_sink_gate.append(gate_index[first])
                conn_sink_token.append(token(second))
                conn_layers.append((conn.h_layer, conn.v_layer))
                conn_coords.append((
                    conn.source.x, conn.source.y, conn.target.x, conn.target.y
                ))
                src_hint = conn.source_hint
                tgt_hint = conn.target_hint
                conn_hint_mask.append((src_hint is not None, tgt_hint is not None))
                conn_hints.append((
                    src_hint.x if src_hint is not None else 0.0,
                    src_hint.y if src_hint is not None else 0.0,
                    tgt_hint.x if tgt_hint is not None else 0.0,
                    tgt_hint.y if tgt_hint is not None else 0.0,
                ))
                conn_protected.append(bool(conn.protected))
                conn_seg_count.append(len(conn.segments))
                conn_via_count.append(len(conn.vias))
                for seg in conn.segments:
                    seg_rows.append((seg.layer, seg.x1, seg.y1, seg.x2, seg.y2))
                for via in conn.vias:
                    via_rows.append((via.x, via.y, via.lower))
    except KeyError as error:
        raise UnstorableBuild(f"routing references unknown name: {error}")

    arrays[prefix + "rnet_net"] = np.asarray(rnet_net, dtype=np.int64)
    arrays[prefix + "rnet_driver"] = rnet_driver
    arrays[prefix + "rnet_has_driver"] = np.asarray(rnet_has_driver, dtype=np.uint8)
    arrays[prefix + "rnet_conn_count"] = np.asarray(rnet_conn_count, dtype=np.int64)
    arrays[prefix + "rnet_dvia_count"] = np.asarray(rnet_dvia_count, dtype=np.int64)
    arrays[prefix + "sink_tokens"] = np.array(
        sorted(sink_tokens, key=sink_tokens.get), dtype=np.str_
    )
    arrays[prefix + "conn_net"] = np.asarray(conn_net, dtype=np.int64)
    arrays[prefix + "conn_sink_gate"] = np.asarray(conn_sink_gate, dtype=np.int64)
    arrays[prefix + "conn_sink_token"] = np.asarray(conn_sink_token, dtype=np.int64)
    arrays[prefix + "conn_layers"] = np.asarray(
        conn_layers, dtype=np.int16
    ).reshape(-1, 2)
    arrays[prefix + "conn_coords"] = np.asarray(
        conn_coords, dtype=np.float64
    ).reshape(-1, 4)
    arrays[prefix + "conn_hints"] = np.asarray(
        conn_hints, dtype=np.float64
    ).reshape(-1, 4)
    arrays[prefix + "conn_hint_mask"] = np.asarray(
        conn_hint_mask, dtype=np.uint8
    ).reshape(-1, 2)
    arrays[prefix + "conn_protected"] = np.asarray(conn_protected, dtype=np.uint8)
    arrays[prefix + "conn_seg_count"] = np.asarray(conn_seg_count, dtype=np.int64)
    arrays[prefix + "conn_via_count"] = np.asarray(conn_via_count, dtype=np.int64)
    arrays[prefix + "seg_rows"] = np.asarray(
        seg_rows, dtype=np.float64
    ).reshape(-1, 5)
    arrays[prefix + "via_rows"] = np.asarray(
        via_rows, dtype=np.float64
    ).reshape(-1, 3)
    arrays[prefix + "dvia_rows"] = np.asarray(
        dvia_rows, dtype=np.float64
    ).reshape(-1, 3)

    return _layout_record(layout, netlist, net_index, arrays, prefix)


def _encode_routing_fast(backing: RoutingArrays, net_index: Dict[str, int],
                         gate_index: Dict[str, int],
                         arrays: Dict[str, np.ndarray], prefix: str) -> None:
    """Routing payload straight from a clean :class:`RoutingArrays`.

    Byte-identical to the object walk in :func:`_encode_layout`: the same
    arrays with the same dtypes and values, built as column copies/stacks
    (plus the two name→index translation loops the format needs) instead of
    a triple-nested object traversal.  Interning the sink tokens from
    ``sink_refs`` in connection order reproduces the walk's first-appearance
    token ids exactly.
    """
    num_conns = backing.num_connections
    try:
        rnet_net = np.fromiter(
            (net_index[name] for name in backing.net_names),
            dtype=np.int64, count=backing.num_nets,
        )
        if backing.conn_net_names is not None:
            conn_net = np.fromiter(
                (net_index[name] for name in backing.conn_net_names),
                dtype=np.int64, count=num_conns,
            )
        else:
            conn_net = np.repeat(rnet_net, np.diff(backing.conn_starts))
        sink_tokens: Dict[str, int] = {}
        token = sink_tokens.setdefault
        conn_sink_gate = np.fromiter(
            (-1 if first == "PO" else gate_index[first]
             for first, _second in backing.sink_refs),
            dtype=np.int64, count=num_conns,
        )
        conn_sink_token = np.fromiter(
            (token(second, len(sink_tokens))
             for _first, second in backing.sink_refs),
            dtype=np.int64, count=num_conns,
        )
    except KeyError as error:
        raise UnstorableBuild(f"routing references unknown name: {error}")

    arrays[prefix + "rnet_net"] = rnet_net
    # Column-backed drivers hold (0.0, 0.0) wherever has_driver is false —
    # the same placeholder the object walk writes.
    arrays[prefix + "rnet_driver"] = np.column_stack(
        (backing.driver_x, backing.driver_y)
    )
    arrays[prefix + "rnet_has_driver"] = backing.has_driver.astype(np.uint8)
    arrays[prefix + "rnet_conn_count"] = np.diff(backing.conn_starts)
    arrays[prefix + "rnet_dvia_count"] = np.diff(backing.dvia_starts)
    arrays[prefix + "sink_tokens"] = np.array(
        sorted(sink_tokens, key=sink_tokens.get), dtype=np.str_
    )
    arrays[prefix + "conn_net"] = conn_net
    arrays[prefix + "conn_sink_gate"] = conn_sink_gate
    arrays[prefix + "conn_sink_token"] = conn_sink_token
    arrays[prefix + "conn_layers"] = np.column_stack(
        (backing.h_layer, backing.v_layer)
    ).astype(np.int16)
    arrays[prefix + "conn_coords"] = np.column_stack(
        (backing.sx, backing.sy, backing.tx, backing.ty)
    )
    arrays[prefix + "conn_hints"] = np.column_stack(
        (backing.hint_sx, backing.hint_sy, backing.hint_tx, backing.hint_ty)
    )
    arrays[prefix + "conn_hint_mask"] = np.column_stack(
        (backing.hint_src_present, backing.hint_tgt_present)
    )
    arrays[prefix + "conn_protected"] = backing.protected.astype(np.uint8)
    arrays[prefix + "conn_seg_count"] = np.diff(backing.seg_starts)
    arrays[prefix + "conn_via_count"] = np.diff(backing.via_starts)
    arrays[prefix + "seg_rows"] = np.column_stack((
        backing.seg_layer, backing.seg_x1, backing.seg_y1,
        backing.seg_x2, backing.seg_y2,
    ))
    arrays[prefix + "via_rows"] = np.column_stack(
        (backing.via_x, backing.via_y, backing.via_lower)
    )
    arrays[prefix + "dvia_rows"] = np.column_stack(
        (backing.dvia_x, backing.dvia_y, backing.dvia_lower)
    )


def _layout_record(layout: Layout, netlist: Netlist,
                   net_index: Dict[str, int],
                   arrays: Dict[str, np.ndarray], prefix: str) -> Dict[str, Any]:
    placement = layout.placement
    try:
        protected = sorted(net_index[name] for name in layout.protected_nets)
    except KeyError as error:
        raise UnstorableBuild(f"protected net {error} unknown to the netlist")
    arrays[prefix + "protected_nets"] = np.asarray(protected, dtype=np.int64)

    floorplan = placement.floorplan
    config = placement.config
    return {
        "name": layout.name,
        "lift_layer": layout.lift_layer,
        "metadata": _encode_jsonable(layout.metadata),
        "geometry_version": layout.geometry_version,
        "placement": {
            "geometry_version": placement.geometry_version,
            "floorplan": {
                "die": [floorplan.die.x_min, floorplan.die.y_min,
                        floorplan.die.x_max, floorplan.die.y_max],
                "num_rows": floorplan.num_rows,
                "sites_per_row": floorplan.sites_per_row,
                "row_height_um": floorplan.row_height_um,
                "site_width_um": floorplan.site_width_um,
                "utilization": floorplan.utilization,
            },
            "config": {
                "ordering": config.ordering,
                "refinement_rounds": config.refinement_rounds,
                "iterations_per_round": config.iterations_per_round,
                "damping": config.damping,
                "max_fanout_for_attraction": config.max_fanout_for_attraction,
                "seed": config.seed,
            },
        },
    }


def _require(arrays: Mapping[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return arrays[name]
    except KeyError:
        raise CodecError(f"payload is missing array {name!r}")


def _decode_layout(record: Mapping[str, Any], arrays: Mapping[str, np.ndarray],
                   netlist: Netlist, prefix: str) -> Layout:
    gate_names = list(netlist.gates)
    net_names = list(netlist.nets)

    # Same __dict__ fast path as the router's bulk constructors: Point is a
    # frozen dataclass whose generated __init__ funnels every field through
    # object.__setattr__, and decode builds one Point per gate/port plus up
    # to four per routed connection — it dominates at superblue scale.
    _point_new = Point.__new__

    def fast_point(x: float, y: float) -> Point:
        point = _point_new(Point)
        d = point.__dict__
        d["x"] = x
        d["y"] = y
        return point

    try:
        placement_record = record["placement"]
        fp = placement_record["floorplan"]
        floorplan = Floorplan(
            die=Rect(*fp["die"]),
            num_rows=fp["num_rows"],
            sites_per_row=fp["sites_per_row"],
            row_height_um=fp["row_height_um"],
            site_width_um=fp["site_width_um"],
            utilization=fp["utilization"],
        )
        config = PlacerConfig(**placement_record["config"])
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed placement record: {error!r}")

    gate_order = _require(arrays, prefix + "gate_order")
    gate_x = _require(arrays, prefix + "gate_x").tolist()
    gate_y = _require(arrays, prefix + "gate_y").tolist()
    if not (len(gate_order) == len(gate_x) == len(gate_y)):
        raise CodecError("placement coordinate columns are misaligned")
    try:
        gate_positions = {
            gate_names[index]: fast_point(x, y)
            for index, x, y in zip(gate_order.tolist(), gate_x, gate_y)
        }
    except IndexError:
        raise CodecError("gate index out of range for the regenerated netlist")
    port_names = _require(arrays, prefix + "port_names").tolist()
    port_x = _require(arrays, prefix + "port_x").tolist()
    port_y = _require(arrays, prefix + "port_y").tolist()
    if not (len(port_names) == len(port_x) == len(port_y)):
        raise CodecError("port coordinate columns are misaligned")
    port_positions = {
        name: fast_point(x, y) for name, x, y in zip(port_names, port_x, port_y)
    }
    placement = PlacementResult(
        floorplan, gate_positions, port_positions, config,
        geometry_version=int(placement_record.get("geometry_version", 0)),
    )

    # -- routing -----------------------------------------------------------
    rnet_net = _require(arrays, prefix + "rnet_net").tolist()
    rnet_driver = _require(arrays, prefix + "rnet_driver")
    rnet_has_driver = _require(arrays, prefix + "rnet_has_driver").tolist()
    rnet_conn_count = _require(arrays, prefix + "rnet_conn_count").tolist()
    rnet_dvia_count = _require(arrays, prefix + "rnet_dvia_count").tolist()
    sink_tokens = _require(arrays, prefix + "sink_tokens").tolist()
    conn_net = _require(arrays, prefix + "conn_net").tolist()
    conn_sink_gate = _require(arrays, prefix + "conn_sink_gate").tolist()
    conn_sink_token = _require(arrays, prefix + "conn_sink_token").tolist()
    conn_layers = _require(arrays, prefix + "conn_layers")
    conn_coords = _require(arrays, prefix + "conn_coords")
    conn_hints = _require(arrays, prefix + "conn_hints")
    conn_hint_mask = _require(arrays, prefix + "conn_hint_mask")
    conn_protected = _require(arrays, prefix + "conn_protected").tolist()
    conn_seg_count = _require(arrays, prefix + "conn_seg_count").tolist()
    conn_via_count = _require(arrays, prefix + "conn_via_count").tolist()
    seg_rows = _require(arrays, prefix + "seg_rows")
    via_rows = _require(arrays, prefix + "via_rows")
    dvia_rows = _require(arrays, prefix + "dvia_rows")

    n_conns = len(conn_net)
    if not (
        n_conns == len(conn_sink_gate) == len(conn_sink_token)
        == len(conn_layers) == len(conn_coords) == len(conn_hints)
        == len(conn_hint_mask) == len(conn_protected)
        == len(conn_seg_count) == len(conn_via_count)
    ):
        raise CodecError("connection columns are misaligned")
    if sum(rnet_conn_count) != n_conns:
        raise CodecError("per-net connection counts do not cover the table")
    if sum(conn_seg_count) != len(seg_rows):
        raise CodecError("segment counts do not cover the segment table")
    if sum(conn_via_count) != len(via_rows):
        raise CodecError("via counts do not cover the via table")
    if sum(rnet_dvia_count) != len(dvia_rows):
        raise CodecError("driver-via counts do not cover the table")
    if (conn_layers.ndim != 2 or conn_layers.shape[1] != 2
            or conn_coords.ndim != 2 or conn_coords.shape[1] != 4
            or conn_hints.ndim != 2 or conn_hints.shape[1] != 4
            or conn_hint_mask.ndim != 2 or conn_hint_mask.shape[1] != 2
            or rnet_driver.ndim != 2 or rnet_driver.shape[1] != 2):
        raise CodecError("connection columns have unexpected shapes")

    # Columnar decode: keep the payload columns AS the routing (one
    # RoutingArrays backing + lazy RoutedNet shells) and resolve only the
    # name references eagerly.  Nothing geometric is materialized until a
    # consumer touches a net's ``connections``/``driver_vias`` — re-encoding
    # a freshly decoded build is a near-copy of these same columns.
    try:
        entry_names = [net_names[i] for i in rnet_net]
        conn_net_names = [net_names[i] for i in conn_net]
        sink_refs = [
            ("PO" if gate < 0 else gate_names[gate], sink_tokens[tok])
            for gate, tok in zip(conn_sink_gate, conn_sink_token)
        ]
        driver_points: List[Optional[Point]] = [
            fast_point(x, y) if has else None
            for has, x, y in zip(
                rnet_has_driver,
                rnet_driver[:, 0].tolist(), rnet_driver[:, 1].tolist(),
            )
        ]
    except IndexError:
        raise CodecError("routing index out of range for the regenerated netlist")

    dvia_lower = (dvia_rows[:, 2].astype(np.int64) if len(dvia_rows)
                  else np.empty(0, dtype=np.int64))
    via_lower = (via_rows[:, 2].astype(np.int64) if len(via_rows)
                 else np.empty(0, dtype=np.int64))
    seg_layer = (seg_rows[:, 0].astype(np.int64) if len(seg_rows)
                 else np.empty(0, dtype=np.int64))
    empty_f64 = np.empty(0, dtype=np.float64)

    def _csr(counts: List[int]) -> np.ndarray:
        return np.concatenate(
            ([0], np.cumsum(np.asarray(counts, dtype=np.int64)))
        ).astype(np.int64)

    backing = RoutingArrays(
        net_names=entry_names,
        conn_starts=_csr(rnet_conn_count),
        driver_x=rnet_driver[:, 0],
        driver_y=rnet_driver[:, 1],
        has_driver=np.asarray(rnet_has_driver, dtype=bool),
        driver_points=driver_points,
        dvia_starts=_csr(rnet_dvia_count),
        dvia_x=dvia_rows[:, 0] if len(dvia_rows) else empty_f64,
        dvia_y=dvia_rows[:, 1] if len(dvia_rows) else empty_f64,
        dvia_lower=dvia_lower,
        dvia_upper=dvia_lower + 1,
        sink_refs=sink_refs,
        sx=conn_coords[:, 0], sy=conn_coords[:, 1],
        tx=conn_coords[:, 2], ty=conn_coords[:, 3],
        h_layer=conn_layers[:, 0].astype(np.int64),
        v_layer=conn_layers[:, 1].astype(np.int64),
        protected=np.asarray(conn_protected, dtype=np.uint8),
        # Copies: override_hints writes these in place (defense re-aiming).
        hint_sx=conn_hints[:, 0].copy(), hint_sy=conn_hints[:, 1].copy(),
        hint_tx=conn_hints[:, 2].copy(), hint_ty=conn_hints[:, 3].copy(),
        hint_src_present=conn_hint_mask[:, 0].astype(np.uint8).copy(),
        hint_tgt_present=conn_hint_mask[:, 1].astype(np.uint8).copy(),
        hint_default=np.zeros(n_conns, dtype=bool),
        seg_starts=_csr(conn_seg_count),
        via_starts=_csr(conn_via_count),
        seg_layer=seg_layer,
        seg_x1=seg_rows[:, 1] if len(seg_rows) else empty_f64,
        seg_y1=seg_rows[:, 2] if len(seg_rows) else empty_f64,
        seg_x2=seg_rows[:, 3] if len(seg_rows) else empty_f64,
        seg_y2=seg_rows[:, 4] if len(seg_rows) else empty_f64,
        via_x=via_rows[:, 0] if len(via_rows) else empty_f64,
        via_y=via_rows[:, 1] if len(via_rows) else empty_f64,
        via_lower=via_lower,
        via_upper=via_lower + 1,
        conn_net_names=conn_net_names,
    )
    routing = backing.lazy_nets()

    try:
        protected_nets = {
            net_names[index]
            for index in _require(arrays, prefix + "protected_nets").tolist()
        }
    except IndexError:
        raise CodecError("protected-net index out of range")

    lift_layer = record.get("lift_layer")
    return Layout(
        name=str(record.get("name", f"{netlist.name}_layout")),
        netlist=netlist,
        placement=placement,
        routing=routing,
        protected_nets=protected_nets,
        lift_layer=int(lift_layer) if lift_layer is not None else None,
        metadata=_decode_jsonable(record.get("metadata", {})),
        geometry_version=int(record.get("geometry_version", 0)),
    )


# ---------------------------------------------------------------------------
# SchemeBuild encoding
# ---------------------------------------------------------------------------

def encode_build(build: Any, netlist: Netlist
                 ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Flatten a :class:`~repro.api.schemes.SchemeBuild` into columns.

    Returns:
        ``(record, arrays)`` — a JSON-compatible metadata record and the
        named coordinate/skeleton arrays of the payload.

    Raises:
        UnstorableBuild: The build carries state the format cannot
            represent (a full :class:`~repro.core.flow.ProtectionResult`,
            a baseline distinct from the scheme layout, non-plain
            metadata).
    """
    if getattr(build, "protection", None) is not None:
        raise UnstorableBuild(
            f"scheme {build.scheme!r} carries a full ProtectionResult; "
            "only plain-layout builds are stored"
        )
    if build.baseline is None:
        baseline = "none"
    elif build.baseline is build.layout:
        baseline = "same"
    else:
        raise UnstorableBuild(
            f"scheme {build.scheme!r} has a baseline distinct from its layout"
        )
    arrays: Dict[str, np.ndarray] = {}
    record = {
        "codec_version": CODEC_FORMAT_VERSION,
        "scheme": build.scheme,
        "baseline": baseline,
        "restrict_to_protected": bool(build.restrict_to_protected),
        "netlist_fingerprint": netlist_fingerprint(netlist),
        "topology_version": netlist.topology_version,
        "layout": _encode_layout(build.layout, netlist, arrays, "layout."),
    }
    return record, arrays


def decode_build(record: Mapping[str, Any], arrays: Mapping[str, np.ndarray],
                 netlist: Netlist):
    """Rebuild a :class:`~repro.api.schemes.SchemeBuild` from its columns.

    ``netlist`` must be the deterministic regeneration of the benchmark the
    entry was built from; the recorded fingerprint and ``topology_version``
    are verified against it before any object is materialized.

    Raises:
        CodecError: Malformed or truncated payload.
        StaleEntry: The regenerated netlist no longer matches the recorded
            fingerprint / topology version.
    """
    from repro.api.schemes import SchemeBuild

    if record.get("codec_version") != CODEC_FORMAT_VERSION:
        raise CodecError(
            f"codec version {record.get('codec_version')!r} != "
            f"{CODEC_FORMAT_VERSION}"
        )
    expected = record.get("netlist_fingerprint")
    actual = netlist_fingerprint(netlist)
    if expected != actual:
        raise StaleEntry(
            f"netlist fingerprint changed ({str(expected)[:12]}… recorded, "
            f"{actual[:12]}… regenerated) — benchmark generation has moved"
        )
    recorded_topology = record.get("topology_version")
    if recorded_topology != netlist.topology_version:
        raise StaleEntry(
            f"topology_version changed ({recorded_topology} recorded, "
            f"{netlist.topology_version} regenerated)"
        )
    layout = _decode_layout(record["layout"], arrays, netlist, "layout.")
    baseline_mode = record.get("baseline")
    if baseline_mode == "same":
        baseline = layout
    elif baseline_mode == "none":
        baseline = None
    else:
        raise CodecError(f"unknown baseline mode {baseline_mode!r}")
    return SchemeBuild(
        scheme=str(record["scheme"]),
        layout=layout,
        baseline=baseline,
        restrict_to_protected=bool(record.get("restrict_to_protected", False)),
    )
