"""Persistent, content-addressed artefact store (disk tier of the cache).

See :mod:`repro.store.store` for the on-disk layout and contracts and
:mod:`repro.store.codec` for the columnar payload format.
"""

from repro.store.codec import (
    CODEC_FORMAT_VERSION,
    CodecError,
    StaleEntry,
    UnstorableBuild,
    decode_build,
    encode_build,
    netlist_fingerprint,
)
from repro.store.store import (
    STORE_FORMAT_VERSION,
    ArtifactStore,
    ReadOnlyStoreError,
    StoreEntry,
    StoreError,
    regenerate_netlist,
)

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "StoreError",
    "ReadOnlyStoreError",
    "UnstorableBuild",
    "CodecError",
    "StaleEntry",
    "encode_build",
    "decode_build",
    "netlist_fingerprint",
    "regenerate_netlist",
    "CODEC_FORMAT_VERSION",
    "STORE_FORMAT_VERSION",
]
