"""Content-addressed, disk-backed artefact store.

One entry per canonical build hash (:meth:`repro.api.spec.ScenarioSpec.
build_key`), laid out as::

    <root>/
        config.json                      # store-level settings (budgets)
        tmp/                             # staging area for atomic installs
        objects/<key[:2]>/<key>/
            manifest.json                # build dict, versions, checksums
            payload.npz                  # columnar arrays (repro.store.codec)
        objects/<key[:2]>/<key>.bad/     # quarantined corrupt/stale entries

Contracts:

* **Atomicity** — entries are staged under ``tmp/`` and installed with one
  ``os.rename``; readers can never observe a half-written entry, and two
  processes racing to publish the same key end with exactly one payload on
  disk (the rename loser discards its staging copy and keeps its in-memory
  build — results are bit-identical either way because builds are
  deterministic in the key).
* **Verification** — every load re-hashes ``payload.npz`` against the
  manifest's SHA-256, gates on the store/codec format versions, and decodes
  against a *freshly regenerated* netlist whose fingerprint and
  ``topology_version`` must match the recorded ones.  Anything that fails —
  unreadable manifest, checksum mismatch, truncated arrays, stale
  fingerprint — quarantines the entry to a ``.bad`` sidecar (with a
  ``reason.txt``) and reports a miss, so callers rebuild; a corrupt store
  can cost time, never correctness, and never a crash.
* **Eviction** — least-recently-used by manifest mtime (touched on every
  hit), driven by optional ``max_bytes`` / ``max_entries`` budgets applied
  after each save and on demand via :meth:`ArtifactStore.gc`.

Environment:

* ``REPRO_STORE`` — default store root for :func:`ArtifactStore.from_env`.
* ``REPRO_STORE_READONLY=1`` — open read-only: saves and quarantines are
  skipped (corrupt entries degrade to plain misses), and the Workspace
  treats a miss as a hard error instead of building (resumable-sweep
  verification mode).
* ``REPRO_STORE_CHAOS`` — test hook, e.g. ``slow_write=0.5``: payloads are
  staged in two halves with a sleep in between, widening the torn-write
  window the concurrency tests kill workers inside.
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import logging
import os
import shutil
import struct
import tempfile
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.store.codec import (
    CODEC_FORMAT_VERSION,
    CodecError,
    StaleEntry,
    UnstorableBuild,
    decode_build,
    encode_build,
)

logger = logging.getLogger("repro.store")

#: Bump on ANY change to the on-disk entry layout or manifest schema.
#: Entries written under another store format version are treated as plain
#: misses (left intact for the older reader that wrote them, never
#: quarantined): format drift is not corruption.
STORE_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_PAYLOAD = "payload.npz"
_BAD_SUFFIX = ".bad"


class StoreError(Exception):
    """Unrecoverable store-level failure (unwritable root, bad config)."""


class ReadOnlyStoreError(StoreError):
    """A write was attempted on a read-only store."""


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in {"1", "true", "yes", "on"}


def _parse_chaos(text: Optional[str]) -> Dict[str, float]:
    """Parse ``REPRO_STORE_CHAOS`` (compact ``key=value[,key=value]``)."""
    plan: Dict[str, float] = {}
    if not text:
        return plan
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        try:
            plan[key.strip()] = float(value) if value else 1.0
        except ValueError:
            logger.warning("ignoring malformed REPRO_STORE_CHAOS item %r", part)
    return plan


def regenerate_netlist(build: Mapping[str, Any]):
    """Deterministically regenerate the netlist a build dict describes."""
    from repro.circuits.registry import get_benchmark

    netlist_seed = build.get("netlist_seed")
    if netlist_seed is None:
        netlist_seed = build["seed"]
    return get_benchmark(
        build["benchmark"], seed=int(netlist_seed), scale=build.get("scale")
    )


@dataclass
class StoreEntry:
    """One catalogued entry (as returned by :meth:`ArtifactStore.entries`)."""

    key: str
    path: Path
    bytes: int
    mtime: float
    build: Dict[str, Any] = field(default_factory=dict)

    @property
    def scheme(self) -> str:
        return str(self.build.get("scheme", "?"))

    @property
    def benchmark(self) -> str:
        return str(self.build.get("benchmark", "?"))


class ArtifactStore:
    """Disk tier of the Workspace build cache.  See the module docstring."""

    def __init__(self, root: os.PathLike, *, readonly: Optional[bool] = None,
                 max_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None,
                 verify_checksums: bool = True):
        self.root = Path(root)
        if readonly is None:
            readonly = _env_flag("REPRO_STORE_READONLY")
        self.readonly = bool(readonly)
        self.verify_checksums = bool(verify_checksums)
        self._chaos = _parse_chaos(os.environ.get("REPRO_STORE_CHAOS"))
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "saves": 0, "save_races": 0,
            "unstorable": 0, "quarantined": 0, "evicted": 0,
        }
        config = self._read_config()
        self.max_bytes = max_bytes if max_bytes is not None else config.get("max_bytes")
        self.max_entries = (
            max_entries if max_entries is not None else config.get("max_entries")
        )
        if not self.readonly:
            self._ensure_layout()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_env(cls, **kwargs) -> Optional["ArtifactStore"]:
        """The store named by ``REPRO_STORE``, or ``None`` when unset."""
        root = os.environ.get("REPRO_STORE", "").strip()
        if not root:
            return None
        return cls(root, **kwargs)

    def worker_payload(self) -> Dict[str, Any]:
        """Plain-data description a pool worker reopens the store from."""
        return {"root": str(self.root), "readonly": self.readonly}

    @classmethod
    def from_worker_payload(cls, payload: Optional[Mapping[str, Any]]
                            ) -> Optional["ArtifactStore"]:
        if not payload:
            return None
        return cls(payload["root"], readonly=payload.get("readonly"))

    # -- paths -------------------------------------------------------------

    def _objects_dir(self) -> Path:
        return self.root / "objects"

    def _entry_dir(self, key: str) -> Path:
        return self._objects_dir() / key[:2] / key

    def _ensure_layout(self) -> None:
        try:
            (self.root / "tmp").mkdir(parents=True, exist_ok=True)
            self._objects_dir().mkdir(parents=True, exist_ok=True)
            config_path = self.root / "config.json"
            if not config_path.exists():
                payload = {
                    "store_format_version": STORE_FORMAT_VERSION,
                    "max_bytes": self.max_bytes,
                    "max_entries": self.max_entries,
                }
                tmp = config_path.with_suffix(".json.tmp.%d" % os.getpid())
                tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
                try:
                    os.rename(tmp, config_path)
                except OSError:
                    tmp.unlink(missing_ok=True)
        except OSError as error:
            raise StoreError(f"cannot initialize store at {self.root}: {error}")

    def _read_config(self) -> Dict[str, Any]:
        try:
            return json.loads((self.root / "config.json").read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    # -- save --------------------------------------------------------------

    def save(self, key: str, build: Any, build_dict: Mapping[str, Any],
             netlist) -> bool:
        """Serialize ``build`` under ``key``; True iff this call installed it.

        Read-only stores, already-present keys, lost install races and
        unstorable builds all return ``False`` — saving is always best
        effort and never raises for a representational reason.  Only an
        unusable store root raises :class:`StoreError`.
        """
        if self.readonly:
            return False
        if self.has(key):
            return False
        try:
            record, arrays = encode_build(build, netlist)
        except UnstorableBuild as error:
            self.stats["unstorable"] += 1
            logger.debug("store: %s not stored: %s", key[:12], error)
            return False
        self._ensure_layout()
        stage = Path(tempfile.mkdtemp(prefix=key[:12] + ".", dir=self.root / "tmp"))
        try:
            payload_path = stage / _PAYLOAD
            buffer = io.BytesIO()
            # np.savez (not _compressed): ZIP_STORED members are what makes
            # memory-mapped reads possible (see _mmap_npz).
            np.savez(buffer, **arrays)
            raw = buffer.getvalue()
            slow = self._chaos.get("slow_write")
            with open(payload_path, "wb") as handle:
                if slow:
                    # Chaos hook: leave a half-written payload visible in the
                    # staging dir for a while so kill-mid-write tests can
                    # interrupt inside the torn-write window.
                    half = len(raw) // 2
                    handle.write(raw[:half])
                    handle.flush()
                    os.fsync(handle.fileno())
                    time.sleep(float(slow))
                    handle.write(raw[half:])
                else:
                    handle.write(raw)
                handle.flush()
                os.fsync(handle.fileno())
            manifest = {
                "store_format_version": STORE_FORMAT_VERSION,
                "codec_format_version": CODEC_FORMAT_VERSION,
                "build_key": key,
                "build": dict(build_dict),
                "record": record,
                "payload_sha256": hashlib.sha256(raw).hexdigest(),
                "payload_bytes": len(raw),
                "created_utc": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
            }
            manifest_path = stage / _MANIFEST
            with open(manifest_path, "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            final = self._entry_dir(key)
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(stage, final)
            except OSError as error:
                if error.errno in (errno.EEXIST, errno.ENOTEMPTY) or final.exists():
                    # Lost the publish race: someone else installed the same
                    # deterministic payload first.  Keep theirs.
                    self.stats["save_races"] += 1
                    return False
                raise StoreError(f"cannot install store entry {key}: {error}")
            self.stats["saves"] += 1
            logger.debug("store: saved %s (%d bytes)", key[:12], len(raw))
            self._auto_evict()
            return True
        finally:
            shutil.rmtree(stage, ignore_errors=True)

    # -- load --------------------------------------------------------------

    def has(self, key: str) -> bool:
        entry = self._entry_dir(key)
        return (entry / _MANIFEST).exists() and (entry / _PAYLOAD).exists()

    def manifest(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the raw manifest dict for ``key`` (``None`` on any miss).

        Unlike :meth:`load` this does not decode or checksum the payload —
        it is the cheap metadata read the service layer serves over the
        wire; clients verify the payload themselves against
        ``payload_sha256``.
        """
        if not self.has(key):
            return None
        try:
            return json.loads((self._entry_dir(key) / _MANIFEST).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def payload_path(self, key: str) -> Optional[Path]:
        """Path of the stored ``payload.npz`` for ``key``, or ``None``."""
        if not self.has(key):
            return None
        return self._entry_dir(key) / _PAYLOAD

    def load(self, key: str, netlist=None) -> Optional[Any]:
        """Decode the stored build for ``key``; ``None`` on any miss.

        ``netlist`` is the regenerated benchmark netlist when the caller
        already has it (the Workspace does); left ``None`` it is regenerated
        from the manifest's build dict.  Every failure mode — missing entry,
        unreadable manifest, version drift, checksum mismatch, truncated or
        stale payload — returns ``None`` (quarantining the entry when it is
        damaged rather than merely from another format), so a load can cost
        a rebuild, never a crash.
        """
        entry = self._entry_dir(key)
        manifest_path = entry / _MANIFEST
        payload_path = entry / _PAYLOAD
        if not manifest_path.exists() or not payload_path.exists():
            self.stats["misses"] += 1
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            self._quarantine(key, f"unreadable manifest: {error!r}")
            self.stats["misses"] += 1
            return None
        if manifest.get("store_format_version") != STORE_FORMAT_VERSION:
            # Another (older/newer) writer's entry: a miss, not damage.
            logger.debug(
                "store: %s written under store format %r (want %r) — miss",
                key[:12], manifest.get("store_format_version"),
                STORE_FORMAT_VERSION,
            )
            self.stats["misses"] += 1
            return None
        if manifest.get("build_key") != key:
            self._quarantine(
                key, f"manifest build_key {manifest.get('build_key')!r} != {key!r}"
            )
            self.stats["misses"] += 1
            return None
        if self.verify_checksums:
            actual = _sha256_file(payload_path)
            if actual != manifest.get("payload_sha256"):
                self._quarantine(
                    key,
                    f"payload checksum mismatch ({actual[:12]}… != "
                    f"{str(manifest.get('payload_sha256'))[:12]}…)",
                )
                self.stats["misses"] += 1
                return None
        try:
            if netlist is None:
                netlist = regenerate_netlist(manifest.get("build", {}))
            with np.load(payload_path, allow_pickle=False) as payload:
                arrays = {name: payload[name] for name in payload.files}
            build = decode_build(manifest["record"], arrays, netlist)
        except StaleEntry as error:
            self._quarantine(key, f"stale: {error}")
            self.stats["misses"] += 1
            return None
        except (CodecError, KeyError, ValueError, OSError,
                zipfile.BadZipFile) as error:
            self._quarantine(key, f"undecodable payload: {error!r}")
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        self._touch(manifest_path)
        return build

    def _touch(self, manifest_path: Path) -> None:
        if self.readonly:
            return
        try:
            os.utime(manifest_path)
        except OSError:
            pass

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a damaged entry aside as ``<key>.bad`` — never raise."""
        entry = self._entry_dir(key)
        if self.readonly:
            logger.warning(
                "store: entry %s is damaged (%s); store is read-only — "
                "treating as a miss", key[:12], reason,
            )
            return
        bad = entry.with_name(entry.name + _BAD_SUFFIX)
        try:
            if bad.exists():
                shutil.rmtree(bad, ignore_errors=True)
            os.rename(entry, bad)
            (bad / "reason.txt").write_text(reason + "\n")
        except OSError:
            # Last resort: try to delete the damaged entry outright so it
            # stops shadowing rebuilds.
            shutil.rmtree(entry, ignore_errors=True)
        self.stats["quarantined"] += 1
        logger.warning("store: quarantined %s: %s", key[:12], reason)

    # -- memory-mapped array access ---------------------------------------

    def open_arrays(self, key: str, *, mmap: bool = False
                    ) -> Optional[Dict[str, np.ndarray]]:
        """The raw payload columns for ``key`` (read-only views).

        With ``mmap=True`` the ``float64``/integer columns are
        ``np.memmap`` views straight into ``payload.npz`` — possible because
        :meth:`save` writes uncompressed (``ZIP_STORED``) members — so large
        coordinate tables can be scanned without materializing them.
        """
        entry = self._entry_dir(key)
        payload_path = entry / _PAYLOAD
        if not payload_path.exists():
            return None
        try:
            if mmap:
                return _mmap_npz(payload_path)
            with np.load(payload_path, allow_pickle=False) as payload:
                return {name: payload[name] for name in payload.files}
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            logger.warning("store: cannot open arrays for %s: %r", key[:12], error)
            return None

    # -- catalogue / maintenance -------------------------------------------

    def entries(self) -> List[StoreEntry]:
        """All intact entries, least-recently-used first."""
        found: List[StoreEntry] = []
        objects = self._objects_dir()
        if not objects.exists():
            return found
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if not entry.is_dir() or entry.name.endswith(_BAD_SUFFIX):
                    continue
                manifest_path = entry / _MANIFEST
                payload_path = entry / _PAYLOAD
                if not manifest_path.exists() or not payload_path.exists():
                    continue
                try:
                    stat = manifest_path.stat()
                    size = payload_path.stat().st_size + stat.st_size
                    build = json.loads(manifest_path.read_text()).get("build", {})
                except (OSError, json.JSONDecodeError):
                    continue
                found.append(StoreEntry(
                    key=entry.name, path=entry, bytes=size,
                    mtime=stat.st_mtime, build=build,
                ))
        found.sort(key=lambda e: (e.mtime, e.key))
        return found

    def quarantined(self) -> List[Path]:
        objects = self._objects_dir()
        if not objects.exists():
            return []
        return sorted(
            entry for shard in objects.iterdir() if shard.is_dir()
            for entry in shard.iterdir()
            if entry.is_dir() and entry.name.endswith(_BAD_SUFFIX)
        )

    def total_bytes(self) -> int:
        return sum(entry.bytes for entry in self.entries())

    def gc(self, *, max_bytes: Optional[int] = None,
           max_entries: Optional[int] = None,
           drop_quarantined: bool = True) -> Dict[str, int]:
        """Evict least-recently-used entries down to the given budgets."""
        if self.readonly:
            raise ReadOnlyStoreError("gc on a read-only store")
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_entries = max_entries if max_entries is not None else self.max_entries
        removed = freed = 0
        if drop_quarantined:
            for bad in self.quarantined():
                shutil.rmtree(bad, ignore_errors=True)
        entries = self.entries()
        total = sum(entry.bytes for entry in entries)
        index = 0
        while index < len(entries) and (
            (max_entries is not None and len(entries) - index > max_entries)
            or (max_bytes is not None and total > max_bytes)
        ):
            victim = entries[index]
            shutil.rmtree(victim.path, ignore_errors=True)
            total -= victim.bytes
            freed += victim.bytes
            removed += 1
            index += 1
        if removed:
            self.stats["evicted"] += removed
            logger.info(
                "store: evicted %d entr%s (%d bytes) from %s",
                removed, "y" if removed == 1 else "ies", freed, self.root,
            )
        return {"removed": removed, "freed_bytes": freed,
                "remaining": len(self.entries())}

    def _auto_evict(self) -> None:
        if self.max_bytes is None and self.max_entries is None:
            return
        try:
            self.gc(drop_quarantined=False)
        except StoreError:
            pass

    def verify(self) -> List[Dict[str, Any]]:
        """Re-check every entry (checksum + full decode); report per entry.

        Damaged entries are quarantined exactly as a hot-path load would.
        """
        report: List[Dict[str, Any]] = []
        for entry in self.entries():
            hits_before = self.stats["hits"]
            build = self.load(entry.key)
            report.append({
                "key": entry.key,
                "ok": self.stats["hits"] > hits_before and build is not None,
                "bytes": entry.bytes,
                "benchmark": entry.benchmark,
                "scheme": entry.scheme,
            })
        return report

    # -- export / import ---------------------------------------------------

    def export_entries(self, dest: os.PathLike,
                       keys: Optional[List[str]] = None) -> int:
        """Copy entries into a store-shaped directory at ``dest``."""
        dest_store = ArtifactStore(dest, readonly=False)
        wanted = set(keys) if keys is not None else None
        copied = 0
        for entry in self.entries():
            if wanted is not None and entry.key not in wanted:
                continue
            if dest_store.has(entry.key):
                continue
            stage = Path(tempfile.mkdtemp(
                prefix=entry.key[:12] + ".", dir=dest_store.root / "tmp"
            ))
            try:
                shutil.copy2(entry.path / _MANIFEST, stage / _MANIFEST)
                shutil.copy2(entry.path / _PAYLOAD, stage / _PAYLOAD)
                final = dest_store._entry_dir(entry.key)
                final.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.rename(stage, final)
                    copied += 1
                except OSError:
                    pass
            finally:
                shutil.rmtree(stage, ignore_errors=True)
        missing = (
            sorted(wanted - {e.key for e in self.entries()}) if wanted else []
        )
        if missing:
            logger.warning(
                "store: export skipped %d missing key(s): %s",
                len(missing), ", ".join(key[:12] for key in missing),
            )
        return copied

    def import_entries(self, src: os.PathLike) -> int:
        """Copy entries from another store root, checksums verified."""
        if self.readonly:
            raise ReadOnlyStoreError("import into a read-only store")
        src_store = ArtifactStore(src, readonly=True)
        imported = 0
        for entry in src_store.entries():
            if self.has(entry.key):
                continue
            try:
                manifest = json.loads((entry.path / _MANIFEST).read_text())
            except (OSError, json.JSONDecodeError):
                logger.warning(
                    "store: import skipping %s (unreadable manifest)",
                    entry.key[:12],
                )
                continue
            if manifest.get("store_format_version") != STORE_FORMAT_VERSION:
                logger.warning(
                    "store: import skipping %s (store format %r)",
                    entry.key[:12], manifest.get("store_format_version"),
                )
                continue
            if (_sha256_file(entry.path / _PAYLOAD)
                    != manifest.get("payload_sha256")):
                logger.warning(
                    "store: import skipping %s (checksum mismatch)",
                    entry.key[:12],
                )
                continue
            self._ensure_layout()
            stage = Path(tempfile.mkdtemp(
                prefix=entry.key[:12] + ".", dir=self.root / "tmp"
            ))
            try:
                shutil.copy2(entry.path / _MANIFEST, stage / _MANIFEST)
                shutil.copy2(entry.path / _PAYLOAD, stage / _PAYLOAD)
                final = self._entry_dir(entry.key)
                final.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.rename(stage, final)
                    imported += 1
                except OSError:
                    pass
            finally:
                shutil.rmtree(stage, ignore_errors=True)
        if imported:
            self._auto_evict()
        return imported


# ---------------------------------------------------------------------------
# Memory-mapped .npz access
# ---------------------------------------------------------------------------

def _mmap_npz(path: Path) -> Dict[str, np.ndarray]:
    """Open every member of an *uncompressed* ``.npz`` as ``np.memmap``.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
    zip archives, so this walks the zip directory itself: for each
    ``ZIP_STORED`` member the absolute data offset is the member's local-
    header offset plus the 30-byte local header plus its variable name and
    extra fields; the ``.npy`` header (dtype/shape/order) is then parsed at
    that offset and the array mapped copy-on-write right out of the file.
    Compressed or otherwise unmappable members fall back to a plain load.
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        with open(path, "rb") as handle:
            for info in archive.infolist():
                name = info.filename[:-4] if info.filename.endswith(".npy") \
                    else info.filename
                if info.compress_type != zipfile.ZIP_STORED:
                    with archive.open(info) as member:
                        arrays[name] = np.lib.format.read_array(
                            io.BytesIO(member.read()), allow_pickle=False
                        )
                    continue
                handle.seek(info.header_offset)
                local = handle.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    raise zipfile.BadZipFile(
                        f"bad local header for {info.filename!r}"
                    )
                name_len, extra_len = struct.unpack("<HH", local[26:30])
                data_offset = info.header_offset + 30 + name_len + extra_len
                handle.seek(data_offset)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_2_0(handle)
                else:
                    raise zipfile.BadZipFile(
                        f"unsupported npy version {version} in "
                        f"{info.filename!r}"
                    )
                if dtype.hasobject:
                    raise ValueError("object arrays are never stored")
                arrays[name] = np.memmap(
                    path, dtype=dtype, mode="c",
                    offset=handle.tell(),
                    shape=shape, order="F" if fortran else "C",
                )
    return arrays
