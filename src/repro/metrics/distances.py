"""Distances between truly connected gates (paper Table 1 / Fig. 4).

The distance values come out of the layout's columnar connection-pair arrays
(one vectorized ``|dx| + |dy|`` pass, bit-exact with the historical per-pair
loop); the summary statistics and histograms are single NumPy reductions over
that array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.layout.layout import Layout


@dataclass
class DistanceStats:
    """Mean / median / standard deviation of driver→sink gate distances (µm)."""

    mean: float
    median: float
    std_dev: float
    count: int
    values: List[float]

    def as_row(self) -> List[float]:
        return [round(self.mean, 2), round(self.median, 2), round(self.std_dev, 2)]


def distance_stats(layout: Layout, nets: Optional[Set[str]] = None) -> DistanceStats:
    """Compute distance statistics for ``layout``.

    Args:
        layout: The layout to measure (its ``netlist`` holds the *true*
            connectivity, so for protected layouts this measures exactly what
            the paper's Table 1 reports: how far apart truly connected gates
            ended up when the erroneous netlist was placed).
        nets: Restrict to these nets (e.g. the randomized set); default all.
    """
    values = layout.connected_gate_distance_array(nets)
    if values.size == 0:
        return DistanceStats(0.0, 0.0, 0.0, 0, [])
    return DistanceStats(
        mean=float(np.mean(values)),
        median=float(np.median(values)),
        std_dev=float(np.std(values)) if values.size > 1 else 0.0,
        count=int(values.size),
        values=values.tolist(),
    )


def distance_histogram(values: Sequence[float], num_bins: int = 20) -> List[int]:
    """Simple fixed-width histogram of distance values (plot-free Fig. 4 aid)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return [0] * num_bins
    top = float(array.max()) or 1.0
    # Same float ops as the legacy loop: int(num_bins * value / top), clipped.
    index = np.minimum((num_bins * array / top).astype(np.int64), num_bins - 1)
    return np.bincount(index, minlength=num_bins).tolist()
