"""Distances between truly connected gates (paper Table 1 / Fig. 4)."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.layout.layout import Layout


@dataclass
class DistanceStats:
    """Mean / median / standard deviation of driver→sink gate distances (µm)."""

    mean: float
    median: float
    std_dev: float
    count: int
    values: List[float]

    def as_row(self) -> List[float]:
        return [round(self.mean, 2), round(self.median, 2), round(self.std_dev, 2)]


def distance_stats(layout: Layout, nets: Optional[Set[str]] = None) -> DistanceStats:
    """Compute distance statistics for ``layout``.

    Args:
        layout: The layout to measure (its ``netlist`` holds the *true*
            connectivity, so for protected layouts this measures exactly what
            the paper's Table 1 reports: how far apart truly connected gates
            ended up when the erroneous netlist was placed).
        nets: Restrict to these nets (e.g. the randomized set); default all.
    """
    values = layout.connected_gate_distances(nets)
    if not values:
        return DistanceStats(0.0, 0.0, 0.0, 0, [])
    return DistanceStats(
        mean=float(statistics.mean(values)),
        median=float(statistics.median(values)),
        std_dev=float(statistics.pstdev(values)) if len(values) > 1 else 0.0,
        count=len(values),
        values=[float(v) for v in values],
    )


def distance_histogram(values: Sequence[float], num_bins: int = 20) -> List[int]:
    """Simple fixed-width histogram of distance values (plot-free Fig. 4 aid)."""
    if not values:
        return [0] * num_bins
    top = max(values) or 1.0
    bins = [0] * num_bins
    for value in values:
        index = min(int(num_bins * value / top), num_bins - 1)
        bins[index] += 1
    return bins
