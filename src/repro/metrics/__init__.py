"""Security and layout metrics used throughout the paper's evaluation.

* :mod:`repro.metrics.security` — correct connection rate (CCR), output error
  rate (OER) and Hamming distance (HD) of an attack's recovered netlist;
* :mod:`repro.metrics.distances` — statistics of the distances between truly
  connected gates (Table 1 / Fig. 4);
* :mod:`repro.metrics.wirelength` — per-metal-layer wirelength breakdown for
  a set of nets (Fig. 5);
* :mod:`repro.metrics.vias` — additional-via comparisons between layouts
  (Tables 2 and 6);
* :mod:`repro.metrics.ppa` — area/power/delay overhead comparisons (Fig. 6);
* :mod:`repro.metrics.solution_space` — solution-space estimates from the
  routing-centric attack's candidate lists (Sec. 2 footnote).
"""

from repro.metrics.security import SecurityReport, correct_connection_rate, evaluate_attack
from repro.metrics.distances import DistanceStats, distance_stats
from repro.metrics.wirelength import wirelength_share_by_layer
from repro.metrics.vias import via_delta_percent, via_table
from repro.metrics.ppa import ppa_overheads
from repro.metrics.solution_space import (
    log10_num_perfect_matchings,
    log10_solution_space_from_candidates,
)

__all__ = [
    "SecurityReport",
    "correct_connection_rate",
    "evaluate_attack",
    "DistanceStats",
    "distance_stats",
    "wirelength_share_by_layer",
    "via_delta_percent",
    "via_table",
    "ppa_overheads",
    "log10_num_perfect_matchings",
    "log10_solution_space_from_candidates",
]
