"""Per-metal-layer wirelength breakdown (paper Fig. 5).

All three metrics reduce the layout's columnar segment arrays (layer, length,
owning net) in single vectorized passes — a ``bincount`` over segment layers
replaces the historical per-net/per-segment dictionary accumulation.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.layout.layout import Layout
from repro.netlist.cells import NUM_METAL_LAYERS


def wirelength_by_layer(layout: Layout, nets: Optional[Set[str]] = None) -> Dict[int, float]:
    """Routed wirelength per metal layer (µm), optionally restricted to ``nets``."""
    return layout.arrays().wirelength_by_layer(NUM_METAL_LAYERS, nets)


def wirelength_share_by_layer(layout: Layout,
                              nets: Optional[Set[str]] = None) -> Dict[int, float]:
    """Per-layer share of the routed wirelength in percent (sums to ~100).

    The paper's Fig. 5 plots exactly this for the randomized nets of the
    superblue benchmarks: original layouts concentrate the wiring in the
    lower layers, the proposed scheme moves the majority above the split
    layer.
    """
    totals = wirelength_by_layer(layout, nets)
    grand_total = sum(totals.values())
    if grand_total <= 0:
        return {layer: 0.0 for layer in totals}
    return {layer: 100.0 * length / grand_total for layer, length in totals.items()}


def beol_wirelength_fraction(layout: Layout, split_layer: int,
                             nets: Optional[Set[str]] = None) -> float:
    """Fraction (percent) of wirelength strictly above ``split_layer``."""
    totals = wirelength_by_layer(layout, nets)
    grand_total = sum(totals.values())
    if grand_total <= 0:
        return 0.0
    above = sum(length for layer, length in totals.items() if layer > split_layer)
    return 100.0 * above / grand_total
