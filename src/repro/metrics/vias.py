"""Via-count comparisons between layouts (paper Tables 2 and 6)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.layout.layout import Layout
from repro.netlist.cells import NUM_METAL_LAYERS

#: Ordered via names, V12 … V910, matching the paper's Table 2 columns.
VIA_NAMES: List[str] = [f"V{layer}{layer + 1}" for layer in range(1, NUM_METAL_LAYERS)]


def via_counts_by_name(layout: Layout) -> Dict[str, int]:
    """Via counts keyed by the paper's V12 … V910 names."""
    raw = layout.via_counts()
    return {
        f"V{lower}{upper}": raw.get((lower, upper), 0)
        for lower in range(1, NUM_METAL_LAYERS)
        for upper in (lower + 1,)
    }


def via_delta_percent(layout: Layout, baseline: Layout) -> Dict[str, float]:
    """Percentage change in via count per layer pair versus ``baseline``.

    A layer pair with zero vias in the baseline reports 0.0 when the other
    layout also has none, and 100.0 per additional via otherwise (mirroring
    how "additional vias" read when the original count is negligible).
    """
    ours = via_counts_by_name(layout)
    base = via_counts_by_name(baseline)
    deltas: Dict[str, float] = {}
    for name in VIA_NAMES:
        base_count = base.get(name, 0)
        new_count = ours.get(name, 0)
        if base_count == 0:
            deltas[name] = 0.0 if new_count == 0 else 100.0 * new_count
        else:
            deltas[name] = 100.0 * (new_count - base_count) / base_count
    return deltas


def total_via_delta_percent(layout: Layout, baseline: Layout) -> float:
    """Percentage change in the total via count versus ``baseline``."""
    base_total = baseline.total_vias()
    if base_total == 0:
        return 0.0
    return 100.0 * (layout.total_vias() - base_total) / base_total


def via_table(original: Layout, lifted: Layout, protected: Layout) -> Dict[str, Dict[str, float]]:
    """Assemble one benchmark's rows of the paper's Table 2.

    Returns a mapping with the original absolute counts and the lifted /
    proposed percentage deltas, plus the total-via deltas.
    """
    return {
        "original_counts": {k: float(v) for k, v in via_counts_by_name(original).items()},
        "lifted_delta_percent": via_delta_percent(lifted, original),
        "proposed_delta_percent": via_delta_percent(protected, original),
        "totals": {
            "original_total": float(original.total_vias()),
            "lifted_total_delta_percent": total_via_delta_percent(lifted, original),
            "proposed_total_delta_percent": total_via_delta_percent(protected, original),
        },
    }
