"""Area / power / delay overhead comparisons (paper Sec. 5.3 / Fig. 6)."""

from __future__ import annotations

from typing import Dict

from repro.core.flow import PPAReport, evaluate_ppa
from repro.layout.layout import Layout


def ppa_overheads(layout: Layout, baseline: Layout) -> Dict[str, float]:
    """Percentage area / power / delay / wirelength overheads versus ``baseline``.

    Both layouts are measured with the same STA and power models; the area is
    the die-outline area (the paper's area metric — correction cells occupy no
    device area, so a shared floorplan yields exactly 0 %).
    """
    ours = evaluate_ppa(layout)
    base = evaluate_ppa(baseline)
    return ours.overhead_vs(base)


def ppa_report(layout: Layout) -> PPAReport:
    """Convenience re-export of :func:`repro.core.flow.evaluate_ppa`."""
    return evaluate_ppa(layout)
