"""Security metrics: CCR, OER and HD (paper Sec. 2).

* **CCR** (correct connection rate): the ratio of successfully recovered
  driver→sink connections over all connections the attack had to recover.
  The paper reports CCR over the *protected* (randomized) nets for its own
  scheme and over all cut nets for unprotected layouts; both variants are
  supported via the ``restrict_to_protected`` flag.
* **OER** (output error rate): probability that the recovered netlist
  produces at least one wrong output bit for a random pattern.
* **HD** (Hamming distance): average fraction of output bits that differ
  between the original and the recovered netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.netlist.netlist import Netlist
from repro.netlist.simulate import hamming_distance, output_error_rate
from repro.sm.split import FEOLView


@dataclass
class SecurityReport:
    """CCR / OER / HD of one attack run, all in percent."""

    ccr_percent: float
    oer_percent: float
    hd_percent: float
    num_connections_scored: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "ccr_percent": self.ccr_percent,
            "oer_percent": self.oer_percent,
            "hd_percent": self.hd_percent,
            "num_connections_scored": self.num_connections_scored,
        }


def correct_connection_rate(view: FEOLView, assignment: Mapping[int, int],
                            restrict_to_protected: bool = False) -> float:
    """CCR (in percent) of a sink→driver assignment against the ground truth.

    Args:
        view: The attacked FEOL view (carries the ground truth).
        assignment: Mapping sink-vpin id → driver-vpin id chosen by the attack.
        restrict_to_protected: Score only the connections belonging to nets
            the defense randomized (the paper's headline CCR for its scheme);
            when the layout has no protected nets all cut connections are
            scored regardless of this flag.
    """
    connections = view.open_connections
    if restrict_to_protected and any(c.protected for c in connections):
        connections = [c for c in connections if c.protected]
    if not connections:
        return 0.0
    driver_nets = view.driver_vpin_nets()
    correct = 0
    for connection in connections:
        assigned = assignment.get(connection.sink_vpin)
        if assigned is None:
            continue
        # A connection is recovered when the sink is attached to the right
        # *net*; multi-fanout nets expose several driver-side vias and any of
        # them restores the correct connectivity.
        if assigned == connection.driver_vpin or driver_nets.get(assigned) == connection.net:
            correct += 1
    return 100.0 * correct / len(connections)


def evaluate_attack(view: FEOLView, assignment: Mapping[int, int],
                    recovered_netlist: Optional[Netlist],
                    restrict_to_protected: bool = False,
                    num_patterns: int = 2048,
                    seed: int = 0) -> SecurityReport:
    """Compute the full CCR / OER / HD report for one attack run.

    The OER and HD compare the layout's true netlist against the attacker's
    recovered netlist; when no recovered netlist is available (e.g. the
    routing-centric attack) they are reported as 0.
    """
    ccr = correct_connection_rate(view, assignment, restrict_to_protected)
    connections = view.open_connections
    if restrict_to_protected and any(c.protected for c in connections):
        connections = [c for c in connections if c.protected]
    oer = 0.0
    hd = 0.0
    if recovered_netlist is not None:
        reference = view.layout.netlist
        oer = output_error_rate(reference, recovered_netlist, num_patterns, seed)
        hd = hamming_distance(reference, recovered_netlist, num_patterns, seed)
    return SecurityReport(
        ccr_percent=ccr,
        oer_percent=oer,
        hd_percent=hd,
        num_connections_scored=len(connections),
    )
