"""Solution-space estimates (paper Sec. 2, footnote 2).

The paper illustrates the attacker's search space with two quantities:

* the number of perfect matchings of a complete bipartite graph between the
  open drivers and sinks (``n!`` for ``n`` two-pin nets), and
* the reduction achieved by a routing-centric attack, ``E[LS] ** n`` — the
  product of the per-vpin candidate-list sizes.

Both numbers are astronomically large, so they are reported as log10 values.
"""

from __future__ import annotations

import math
from typing import Sequence


def log10_num_perfect_matchings(num_connections: int) -> float:
    """log10 of n! — the unconstrained solution-space size for n two-pin nets."""
    if num_connections < 0:
        raise ValueError("num_connections must be non-negative")
    return math.lgamma(num_connections + 1) / math.log(10.0)


def log10_solution_space_from_candidates(candidate_counts: Sequence[int]) -> float:
    """log10 of the product of candidate-list sizes (0-candidate lists count as 1).

    This is the upper bound on the number of netlists consistent with a
    routing-centric attack's candidate lists; the paper's example computes
    1.4**500 ≈ 1e73 from an average list size of 1.4 over 500 nets.
    """
    total = 0.0
    for count in candidate_counts:
        total += math.log10(max(count, 1))
    return total


def log10_solution_space_from_expected_list_size(expected_list_size: float,
                                                 num_connections: int) -> float:
    """log10 of ``E[LS] ** n`` (the paper's footnote-2 approximation)."""
    if expected_list_size <= 0 or num_connections <= 0:
        return 0.0
    return num_connections * math.log10(expected_list_size)
