"""Structural-Verilog reader/writer for mapped netlists.

The paper exports its protected designs as DEF/Verilog from Cadence Innovus.
This module supports the matching round trip for this reproduction: a flat,
structural Verilog subset in which every instance is a library cell with
named pin connections::

    module c432 (N1, N4, ..., N421);
      input N1;
      output N421;
      wire n_12;
      NAND2_X1 g_10 (.A1(N1), .A2(N4), .ZN(n_12));
    endmodule

Only this subset is supported — no behavioural constructs, no busses beyond
simple escaped names, one module per file — which matches what a mapped
physical-design netlist looks like.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.cells import CellLibrary, default_library
from repro.netlist.netlist import Netlist

_MODULE_RE = re.compile(r"module\s+(?P<name>[\w$]+)\s*\((?P<ports>.*?)\)\s*;", re.S)
_DECL_RE = re.compile(r"^(input|output|wire)\s+(.+)$")
_INSTANCE_RE = re.compile(
    r"^(?P<cell>[\w$]+)\s+(?P<inst>[\w$\[\]]+)\s*\((?P<conns>.*)\)$", re.S
)
_PIN_RE = re.compile(r"\.(?P<pin>[\w$]+)\s*\(\s*(?P<net>[\w$\[\]]*)\s*\)")


class VerilogFormatError(ValueError):
    """Raised when a Verilog description falls outside the supported subset."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return text


def _split_names(decl: str) -> List[str]:
    return [name.strip() for name in decl.split(",") if name.strip()]


def parse_structural_verilog(text: str, library: Optional[CellLibrary] = None) -> Netlist:
    """Parse flat structural Verilog into a :class:`Netlist`."""
    library = library if library is not None else default_library()
    text = _strip_comments(text)
    module_match = _MODULE_RE.search(text)
    if not module_match:
        raise VerilogFormatError("no module declaration found")
    netlist = Netlist(module_match.group("name"), library)
    body = text[module_match.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogFormatError("missing endmodule")
    body = body[:end]

    outputs: List[str] = []
    assigns: List[Tuple[str, str]] = []
    statements = [s.strip() for s in body.split(";") if s.strip()]
    for statement in statements:
        decl_match = _DECL_RE.match(statement.replace("\n", " ").strip())
        if decl_match:
            kind, names = decl_match.group(1), _split_names(decl_match.group(2))
            if kind == "input":
                for name in names:
                    netlist.add_primary_input(name)
            elif kind == "output":
                outputs.extend(names)
            else:  # wire declarations are implicit in our model
                for name in names:
                    netlist.get_or_add_net(name)
            continue
        assign_match = re.match(r"^assign\s+([\w$\[\]]+)\s*=\s*([\w$\[\]]+)$",
                                statement.replace("\n", " ").strip())
        if assign_match:
            # Output-port aliases emitted by the writer: `assign po = net;`.
            assigns.append((assign_match.group(1), assign_match.group(2)))
            continue
        inst_match = _INSTANCE_RE.match(statement.replace("\n", " ").strip())
        if inst_match:
            cell_name = inst_match.group("cell")
            inst_name = inst_match.group("inst")
            if cell_name not in library:
                raise VerilogFormatError(f"unknown cell {cell_name!r}")
            connections: Dict[str, str] = {}
            for pin_match in _PIN_RE.finditer(inst_match.group("conns")):
                net = pin_match.group("net")
                if net:
                    connections[pin_match.group("pin")] = net
            netlist.add_gate(inst_name, cell_name, connections)
            continue
        raise VerilogFormatError(f"unsupported statement: {statement[:80]!r}")

    alias = dict(assigns)
    for po in outputs:
        netlist.add_primary_output(po, alias.get(po, po))
    problems = netlist.validate()
    if problems:
        raise VerilogFormatError(f"parsed netlist is inconsistent: {problems[:3]}")
    return netlist


def write_structural_verilog(netlist: Netlist) -> str:
    """Serialize ``netlist`` as flat structural Verilog."""
    ports = netlist.primary_inputs + netlist.primary_outputs
    lines = [f"module {netlist.name} ({', '.join(ports)});"]
    if netlist.primary_inputs:
        lines.append(f"  input {', '.join(netlist.primary_inputs)};")
    if netlist.primary_outputs:
        lines.append(f"  output {', '.join(netlist.primary_outputs)};")
    internal = sorted(
        name for name in netlist.nets
        if name not in netlist.primary_inputs and name not in netlist.primary_outputs
    )
    for chunk_start in range(0, len(internal), 10):
        chunk = internal[chunk_start:chunk_start + 10]
        lines.append(f"  wire {', '.join(chunk)};")
    # Primary outputs fed by differently named nets need an explicit wire+assign;
    # our writer instead requires output net name == port name, which holds for
    # all netlists produced inside this library.
    for po in netlist.primary_outputs:
        if netlist.output_nets[po] != po:
            lines.append(f"  assign {po} = {netlist.output_nets[po]};")
    for gate in netlist.gates.values():
        conns = ", ".join(
            f".{pin}({net})" for pin, net in sorted(gate.connections.items())
        )
        lines.append(f"  {gate.cell.name} {gate.name} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
