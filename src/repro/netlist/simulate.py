"""Bit-parallel logic simulation and the OER / Hamming-distance metrics.

The paper measures the *output error rate* (OER) and the *Hamming distance*
(HD) between an original netlist and a recovered (or randomized) netlist by
applying 1,000,000 random test patterns in Synopsys VCS.  Here the same
metrics are computed with a bit-parallel simulator: each net carries a
bit-vector whose bit *i* is the net's value under pattern *i*.

Two execution engines share this interface:

* the **vectorized engine** (:mod:`repro.netlist.engine`) compiles the
  netlist once into a cached evaluation plan and executes it over NumPy
  ``uint64``-packed pattern blocks — the default, and fast enough to push
  pattern counts toward the paper's regime;
* the **legacy interpreter** in this module walks gates one at a time over
  Python dicts and arbitrary-precision integers — retained as the semantic
  reference and as the fallback for netlists containing custom cells without
  :attr:`~repro.netlist.cells.Cell.logic_ops` metadata.

Both engines are bit-exact with each other at equal seed (covered by the
equivalence tests in ``tests/test_engine.py``).

Sequential cells are treated as pseudo primary inputs (their ``Q`` outputs are
driven with random values and their ``D`` inputs are observed as pseudo
outputs) — the standard combinational-equivalence framing; the ISCAS-85
benchmarks used in the paper's ISCAS evaluation are purely combinational
anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist import engine as _engine
from repro.netlist.graph import pseudo_topological_order
from repro.netlist.netlist import Netlist
from repro.utils.rng import make_rng

#: Default number of random patterns used by the security metrics.  The
#: vectorized engine makes large pattern counts cheap; see the README for
#: guidance on picking pattern counts per experiment.
DEFAULT_NUM_PATTERNS = 16384


class SimulationError(RuntimeError):
    """Raised when a netlist cannot be simulated (undriven nets, loops...)."""


@dataclass
class SimulationResult:
    """Outcome of one bit-parallel simulation run.

    Attributes:
        num_patterns: Number of patterns packed into each bit-vector.
        inputs: Input pattern per primary input (bit-vector).
        outputs: Observed value per primary output (bit-vector).
        net_values: Value of every net (useful for debugging / toggle counts).
    """

    num_patterns: int
    inputs: Dict[str, int]
    outputs: Dict[str, int]
    net_values: Dict[str, int] = field(default_factory=dict)

    def output_bits(self, name: str) -> List[int]:
        """Return the output ``name`` as a list of 0/1 ints (pattern order)."""
        value = self.outputs[name]
        return [(value >> i) & 1 for i in range(self.num_patterns)]


def random_patterns(names: Sequence[str], num_patterns: int,
                    seed: Optional[int] = 0) -> Dict[str, int]:
    """Generate one random bit-vector of ``num_patterns`` bits per name."""
    rng = make_rng(seed, "patterns") if seed is not None else make_rng(None)
    return {name: rng.getrandbits(num_patterns) for name in names}


def _input_names(netlist: Netlist) -> List[str]:
    """Primary inputs plus sequential outputs (pseudo primary inputs)."""
    return _engine.plan_input_names(netlist)


def _resolved_inputs(netlist: Netlist, patterns: Optional[Mapping[str, int]],
                     num_patterns: int, seed: Optional[int]) -> Dict[str, int]:
    """The exact input bit-vector per (pseudo) primary input."""
    mask = (1 << num_patterns) - 1
    input_names = _input_names(netlist)
    generated = random_patterns(input_names, num_patterns, seed)
    values: Dict[str, int] = {}
    for name in input_names:
        if patterns is not None and name in patterns:
            values[name] = patterns[name] & mask
        else:
            values[name] = generated[name] & mask
    return values


def _simulate_legacy(netlist: Netlist, inputs: Dict[str, int],
                     num_patterns: int, x_value: int) -> SimulationResult:
    """Reference interpreter: per-gate evaluation over Python bigints."""
    mask = (1 << num_patterns) - 1
    values: Dict[str, int] = dict(inputs)

    # The pseudo-topological order degrades gracefully on (attacker-induced)
    # combinational loops instead of refusing to simulate.
    order = pseudo_topological_order(netlist)
    for gate_name in order:
        gate = netlist.gates[gate_name]
        if gate.cell.is_sequential:
            continue  # Outputs already seeded as pseudo inputs.
        gate_inputs: Dict[str, int] = {}
        for pin in gate.input_pin_names:
            net_name = gate.net_on(pin)
            if net_name is None:
                gate_inputs[pin] = x_value & mask
            else:
                gate_inputs[pin] = values.get(net_name, x_value & mask)
        outputs = gate.cell.evaluate(gate_inputs, mask)
        for pin, value in outputs.items():
            net_name = gate.net_on(pin)
            if net_name is not None:
                values[net_name] = value & mask

    observed: Dict[str, int] = {}
    for po in netlist.primary_outputs:
        net_name = netlist.output_nets[po]
        observed[po] = values.get(net_name, x_value & mask)

    return SimulationResult(
        num_patterns=num_patterns,
        inputs=inputs,
        outputs=observed,
        net_values=values,
    )


def simulate(netlist: Netlist, patterns: Optional[Mapping[str, int]] = None,
             num_patterns: int = DEFAULT_NUM_PATTERNS, seed: Optional[int] = 0,
             x_value: int = 0) -> SimulationResult:
    """Simulate ``netlist`` bit-parallel.

    Args:
        netlist: Netlist to simulate; its combinational portion must be acyclic.
        patterns: Optional mapping from primary-input (and pseudo-input) name
            to bit-vector.  Missing entries are filled with random values.
        num_patterns: Number of patterns packed per bit-vector.
        seed: Seed for generated patterns (``None`` = nondeterministic).
        x_value: Value assumed for undriven/unconnected nets (0 or full mask).

    Returns:
        A :class:`SimulationResult` with per-output and per-net values.
    """
    inputs = _resolved_inputs(netlist, patterns, num_patterns, seed)
    try:
        plan = _engine.compile_plan(netlist)
    except _engine.UnsupportedNetlist:
        return _simulate_legacy(netlist, inputs, num_patterns, x_value)
    if plan.prefer_bigints(num_patterns):
        by_slot = _engine.run_plan_bigints(plan, inputs, num_patterns, x_value)
        outputs = {po: by_slot[slot] for po, slot in plan.output_slots}
        net_values = {net: by_slot[slot] for net, slot in plan.value_slots}
    else:
        values = _engine.run_plan(plan, inputs, num_patterns, x_value)
        outputs = _engine.extract_outputs(plan, values, num_patterns)
        net_values = _engine.extract_values(plan, values, num_patterns)
    return SimulationResult(
        num_patterns=num_patterns,
        inputs=inputs,
        outputs=outputs,
        net_values=net_values,
    )


def _shared_input_patterns(reference: Netlist, candidate: Netlist,
                           num_patterns: int, seed: Optional[int]) -> Dict[str, int]:
    names = sorted(set(_input_names(reference)) | set(_input_names(candidate)))
    return random_patterns(names, num_patterns, seed)


def _popcount(value: int) -> int:
    return value.bit_count()


def _plan_outputs(plan: "_engine.SimPlan", patterns: Mapping[str, int],
                  num_patterns: int) -> Dict[str, int]:
    """Primary-output bit-vectors via the plan's preferred executor."""
    if plan.prefer_bigints(num_patterns):
        by_slot = _engine.run_plan_bigints(plan, patterns, num_patterns)
        return {po: by_slot[slot] for po, slot in plan.output_slots}
    values = _engine.run_plan(plan, patterns, num_patterns)
    return _engine.extract_outputs(plan, values, num_patterns)


def _output_pair(
    reference: Netlist, candidate: Netlist, num_patterns: int,
    seed: Optional[int],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Output bit-vectors of both netlists under shared patterns.

    Uses the compiled engine when both netlists support it and falls back to
    the legacy interpreter otherwise.  Raises :class:`SimulationError` when
    the primary-output sets differ.
    """
    patterns = _shared_input_patterns(reference, candidate, num_patterns, seed)
    try:
        ref_plan = _engine.compile_plan(reference)
        cand_plan = _engine.compile_plan(candidate)
    except _engine.UnsupportedNetlist:
        ref_outputs = simulate(reference, patterns, num_patterns, seed).outputs
        cand_outputs = simulate(candidate, patterns, num_patterns, seed).outputs
    else:
        ref_outputs = _plan_outputs(ref_plan, patterns, num_patterns)
        cand_outputs = _plan_outputs(cand_plan, patterns, num_patterns)
    if set(ref_outputs) != set(cand_outputs):
        raise SimulationError(
            "netlists expose different primary outputs; the metric is "
            f"undefined ({sorted(set(ref_outputs) ^ set(cand_outputs))[:5]} ...)"
        )
    return ref_outputs, cand_outputs


def output_error_rate(reference: Netlist, candidate: Netlist,
                      num_patterns: int = DEFAULT_NUM_PATTERNS,
                      seed: Optional[int] = 0) -> float:
    """Output error rate (OER) of ``candidate`` with respect to ``reference``.

    The OER is the fraction of test patterns for which *at least one* primary
    output of ``candidate`` differs from ``reference``.  An OER of ~100 %
    means the candidate netlist is wrong for essentially every input, which is
    the stopping criterion of the paper's randomization step and the desired
    outcome when an attacker simulates a recovered netlist.
    """
    ref_outputs, cand_outputs = _output_pair(reference, candidate, num_patterns, seed)
    error_mask = 0
    for po, ref_value in ref_outputs.items():
        error_mask |= ref_value ^ cand_outputs[po]
    return 100.0 * _popcount(error_mask) / num_patterns


def hamming_distance(reference: Netlist, candidate: Netlist,
                     num_patterns: int = DEFAULT_NUM_PATTERNS,
                     seed: Optional[int] = 0) -> float:
    """Average Hamming distance (HD, %) between the two netlists' outputs.

    The HD is the fraction of *output bits* that differ, averaged over all
    patterns.  0 % and 100 % both denote attack success (100 % is a simple
    inversion); 50 % is the ideal defensive value.
    """
    ref_outputs, cand_outputs = _output_pair(reference, candidate, num_patterns, seed)
    if not ref_outputs:
        return 0.0
    differing = 0
    for po, ref_value in ref_outputs.items():
        differing += _popcount(ref_value ^ cand_outputs[po])
    total_bits = num_patterns * len(ref_outputs)
    return 100.0 * differing / total_bits


def toggle_rates(netlist: Netlist, num_patterns: int = DEFAULT_NUM_PATTERNS,
                 seed: Optional[int] = 0) -> Dict[str, float]:
    """Per-net switching activity estimate in [0, 0.5].

    The activity of a net is estimated as ``p * (1 - p)`` where ``p`` is the
    signal probability over the random patterns; this feeds the dynamic-power
    model.
    """
    try:
        plan = _engine.compile_plan(netlist)
    except _engine.UnsupportedNetlist:
        plan = None
    if plan is not None and not plan.prefer_bigints(num_patterns):
        inputs = _resolved_inputs(netlist, None, num_patterns, seed)
        values = _engine.run_plan(plan, inputs, num_patterns)
        counts = _engine.value_popcounts(plan, values, num_patterns)
        return {
            net: 2.0 * (count / num_patterns) * (1.0 - count / num_patterns)
            for net, count in counts.items()
        }
    result = simulate(netlist, None, num_patterns, seed)
    rates: Dict[str, float] = {}
    for net, value in result.net_values.items():
        p = _popcount(value) / num_patterns
        rates[net] = 2.0 * p * (1.0 - p)
    return rates
