"""Compiled, vectorized bit-parallel simulation engine.

This module is the fast path behind :mod:`repro.netlist.simulate`.  Instead of
walking Python dicts and arbitrary-precision integers gate by gate, a netlist
is compiled once into an **evaluation plan**:

* every net gets an integer *slot* in a ``(num_slots, num_words)`` NumPy
  ``uint64`` value matrix (pattern *i* lives in bit ``i % 64`` of word
  ``i // 64``);
* gates are walked in the same loop-tolerant pseudo-topological order as the
  legacy interpreter and grouped into *batches* of mutually independent gates;
* within a batch, gates of the same logic kind (NAND2, INV, AOI21, ...) are
  fused into a single gather → NumPy-kernel → scatter operation over index
  arrays, so one ``np.bitwise_and`` call evaluates every NAND2 of a level at
  once.

Plans are cached per netlist (keyed on :attr:`Netlist.topology_version`, so
any structural edit transparently invalidates the cache) and executed over
``uint64``-packed pattern blocks.  Execution is **bit-exact** with the legacy
interpreter: batches preserve the sequential read/write semantics of the
pseudo-topological order even on (attacker-induced) combinational loops
because every batch gathers all of its inputs before scattering any output.

Netlists containing cells without :attr:`~repro.netlist.cells.Cell.logic_ops`
metadata (user-defined custom functions) raise :class:`UnsupportedNetlist`;
:mod:`repro.netlist.simulate` falls back to the legacy interpreter for those.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.graph import pseudo_topological_order
from repro.netlist.netlist import Netlist

#: Patterns packed per machine word.
BITS_PER_WORD = 64


class UnsupportedNetlist(RuntimeError):
    """Raised when a netlist contains cells the engine cannot compile."""


# ---------------------------------------------------------------------------
# Packing helpers: Python bigints <-> uint64 word arrays (little endian).
# ---------------------------------------------------------------------------


def num_words(num_patterns: int) -> int:
    """Number of ``uint64`` words needed for ``num_patterns`` packed bits."""
    return max(1, (num_patterns + BITS_PER_WORD - 1) // BITS_PER_WORD)


def pack_bigint(value: int, words: int) -> np.ndarray:
    """Pack a non-negative bigint into a ``(words,)`` ``uint64`` array."""
    raw = value.to_bytes(words * 8, "little")
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64, copy=False)


def unpack_bigint(row: np.ndarray, num_patterns: int) -> int:
    """Unpack a word row back into a bigint, masked to ``num_patterns`` bits."""
    value = int.from_bytes(row.astype("<u8", copy=False).tobytes(), "little")
    rem = num_patterns % BITS_PER_WORD
    if rem:
        value &= (1 << num_patterns) - 1
    return value


if hasattr(np, "bitwise_count"):

    def popcount_words(array: np.ndarray) -> int:
        """Total number of set bits in a ``uint64`` array."""
        return int(np.bitwise_count(array).sum())

    def popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row set-bit counts of a 2-D ``uint64`` array."""
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)

    def popcount_words(array: np.ndarray) -> int:
        return int(_POP8[np.ascontiguousarray(array).view(np.uint8)].sum())

    def popcount_rows(matrix: np.ndarray) -> np.ndarray:
        bytes_view = np.ascontiguousarray(matrix).view(np.uint8)
        return _POP8[bytes_view].sum(axis=1, dtype=np.int64)


def mask_tail(array: np.ndarray, num_patterns: int) -> None:
    """Zero the bits above ``num_patterns`` in the last word (in place)."""
    rem = num_patterns % BITS_PER_WORD
    if rem:
        array[..., -1] &= np.uint64((1 << rem) - 1)


# ---------------------------------------------------------------------------
# Plan representation
# ---------------------------------------------------------------------------


#: One fused group: same op kind, same arity, independent gates.
#: ``ins`` holds one index array per op input position, ``outs`` the
#: destination slots.
GroupOp = Tuple[str, Tuple[np.ndarray, ...], np.ndarray]


@dataclass
class SimPlan:
    """A compiled evaluation plan for one netlist topology revision.

    The plan carries two executable forms of the same topologically sorted
    op list:

    * :attr:`arc_program` — the flat per-gate op list with integer net
      indices, in the legacy interpreter's evaluation order.  It is executed
      either by a tuple-program interpreter (first execution) or by a
      code-generated Python function over packed bigints (re-executed plans;
      see :func:`run_plan_bigints`).  For narrow, deep netlists the bigint
      ops (~0.1 µs per 4096-bit word op) beat per-call NumPy dispatch
      overhead by an order of magnitude.
    * level-fused gather/scatter groups for the NumPy ``uint64``-packed
      executor (:func:`run_plan`), built lazily from the arc levels; this
      amortizes best on wide netlists and large pattern blocks.

    :meth:`prefer_bigints` picks the executor from the plan shape.
    """

    netlist_name: str
    version: int
    num_slots: int
    #: Constant slot that always carries the X fill (never written).
    x_slot: int
    #: ``(input name, slot)`` for primary inputs + sequential pseudo inputs.
    input_slots: List[Tuple[str, int]]
    #: Flat ``(kind, input slots, output slot)`` list in legacy evaluation
    #: order (the sequential reference program).
    arc_program: List[Tuple[str, Tuple[int, ...], int]] = field(default_factory=list)
    #: Batch (level) index per arc; arcs sharing a level are independent.
    arc_levels: List[int] = field(default_factory=list)
    #: Number of levels (batches of the NumPy executor).
    num_batches: int = 0
    #: ``(primary output name, slot)``.
    output_slots: List[Tuple[str, int]] = field(default_factory=list)
    #: ``(net name, slot)`` of every net the legacy interpreter would have
    #: recorded in its values dict (inputs first, then driven nets).
    value_slots: List[Tuple[str, int]] = field(default_factory=list)
    #: Slots produced by the bigint executors, in order.
    result_slots: List[int] = field(default_factory=list, repr=False)
    #: Lazily built gather/scatter batches for the NumPy executor.
    _batches: Optional[List[List[GroupOp]]] = field(default=None, repr=False, compare=False)
    #: Code-generated bigint executor (built once the plan proves hot).
    _bigint_fn: Optional[object] = field(default=None, repr=False, compare=False)
    #: How many times the bigint program has executed (codegen trigger).
    _bigint_runs: int = field(default=0, repr=False, compare=False)

    @property
    def num_groups(self) -> int:
        return sum(len(batch) for batch in self.batches())

    @property
    def num_arcs(self) -> int:
        return len(self.arc_program)

    def batches(self) -> List[List[GroupOp]]:
        """The (lazily built) fused groups for the NumPy executor."""
        if self._batches is None:
            self._batches = _build_batches(self)
        return self._batches

    def prefer_bigints(self, num_patterns: int) -> bool:
        """Whether the bigint executor likely beats the NumPy one.

        NumPy wins when its fixed per-call dispatch cost is amortized over
        many gates per fused group and many packed words per row; otherwise
        the bigint program's ~10x cheaper per-op cost dominates.
        """
        if not self.arc_program:
            return True
        gates_per_batch = self.num_arcs / max(1, self.num_batches)
        return gates_per_batch < 16 or num_words(num_patterns) < 64


@dataclass
class _UnsupportedMarker:
    """Cached negative compile verdict, so legacy-fallback netlists don't
    pay a full compile attempt on every simulate/metric call."""

    version: int
    message: str


_PLAN_CACHE: "weakref.WeakKeyDictionary[Netlist, object]" = weakref.WeakKeyDictionary()


def plan_input_names(netlist: Netlist) -> List[str]:
    """Primary inputs plus sequential-cell outputs (pseudo primary inputs)."""
    names = list(netlist.primary_inputs)
    for gate in netlist.gates.values():
        if gate.cell.is_sequential:
            net = netlist.gate_output_net(gate.name)
            if net is not None:
                names.append(net)
    return names


def compile_plan(netlist: Netlist) -> SimPlan:
    """Return the (cached) evaluation plan for ``netlist``.

    Raises:
        UnsupportedNetlist: When a combinational cell carries no
            ``logic_ops`` metadata and therefore cannot be vectorized.
    """
    cached = _PLAN_CACHE.get(netlist)
    if cached is not None and cached.version == netlist.topology_version:
        if isinstance(cached, _UnsupportedMarker):
            raise UnsupportedNetlist(cached.message)
        return cached
    try:
        plan = _compile(netlist)
    except UnsupportedNetlist as error:
        _PLAN_CACHE[netlist] = _UnsupportedMarker(netlist.topology_version, str(error))
        raise
    _PLAN_CACHE[netlist] = plan
    return plan


def _compile(netlist: Netlist) -> SimPlan:
    net_slot = {name: i for i, name in enumerate(netlist.nets)}
    x_slot = len(net_slot)
    input_names = plan_input_names(netlist)
    input_slots = [(name, net_slot[name]) for name in input_names]
    value_slots: List[Tuple[str, int]] = list(input_slots)

    # Schedule every gate into a batch (level).  Walking the same
    # pseudo-topological order as the legacy interpreter, a gate lands in the
    # earliest batch compatible with the sequential read semantics:
    #
    # * a read from an *earlier* gate of the order must observe that gate's
    #   value -> reader level must exceed the writer's level;
    # * a read from a *later* gate (a loop-broken edge) must observe the X
    #   fill -> the writer's level must not precede the reader's; batches
    #   gather all inputs before scattering any output, so sharing a level
    #   also reads the pre-batch X value.
    #
    # On acyclic netlists this degenerates to plain longest-path levelling.
    order = pseudo_topological_order(netlist)
    gates = netlist.gates
    nets = netlist.nets
    level: Dict[str, int] = {}
    deferred_min_level: Dict[str, int] = {}
    arc_program: List[Tuple[str, Tuple[int, ...], int]] = []
    arc_levels: List[int] = []
    for gate_name in order:
        gate = gates[gate_name]
        cell = gate.cell
        if cell.is_sequential:
            continue
        if cell.logic_ops is None:
            raise UnsupportedNetlist(
                f"cell {cell.name!r} (gate {gate_name!r}) has no logic_ops "
                "metadata; vectorized simulation is unavailable"
            )
        arcs: List[Tuple[str, Tuple[int, ...], int, str]] = []
        unresolved_writers: List[str] = []
        gate_level = deferred_min_level.get(gate_name, 0)
        connections = gate.connections
        for out_pin, kind, in_pins in cell.logic_ops:
            out_net = connections.get(out_pin)
            if out_net is None:
                continue  # The legacy interpreter drops unconnected outputs too.
            in_slots = []
            for pin in in_pins:
                net_name = connections.get(pin)
                if net_name is None:
                    in_slots.append(x_slot)
                    continue
                in_slots.append(net_slot[net_name])
                driver = nets[net_name].driver
                if driver is None:
                    continue
                driver_gate = driver[0]
                if driver_gate in level:
                    driver_level = level[driver_gate]
                    if driver_level >= gate_level:
                        gate_level = driver_level + 1
                elif (
                    driver_gate in gates
                    and not gates[driver_gate].cell.is_sequential
                ):
                    unresolved_writers.append(driver_gate)
            arcs.append((kind, tuple(in_slots), net_slot[out_net], out_net))
        level[gate_name] = gate_level
        for writer in unresolved_writers:
            deferred_min_level[writer] = max(
                deferred_min_level.get(writer, 0), gate_level
            )
        for kind, in_slots, out_slot, out_net in arcs:
            value_slots.append((out_net, out_slot))
            arc_program.append((kind, in_slots, out_slot))
            arc_levels.append(gate_level)

    output_slots = [
        (po, net_slot.get(netlist.output_nets[po], x_slot))
        for po in netlist.primary_outputs
    ]
    result_slots: List[int] = []
    seen_result: set = set()
    for _name, slot in value_slots:
        if slot not in seen_result:
            seen_result.add(slot)
            result_slots.append(slot)
    for _po, slot in output_slots:
        if slot not in seen_result:
            seen_result.add(slot)
            result_slots.append(slot)
    return SimPlan(
        netlist_name=netlist.name,
        version=netlist.topology_version,
        num_slots=x_slot + 1,
        x_slot=x_slot,
        input_slots=input_slots,
        arc_program=arc_program,
        arc_levels=arc_levels,
        num_batches=max(arc_levels) + 1 if arc_levels else 0,
        output_slots=output_slots,
        value_slots=value_slots,
        result_slots=result_slots,
    )


def _build_batches(plan: SimPlan) -> List[List[GroupOp]]:
    """Fuse arcs of each (level, kind, arity) into one gather/scatter group."""
    grouped: List[Dict[Tuple[str, int], Tuple[List[List[int]], List[int]]]] = [
        {} for _ in range(plan.num_batches)
    ]
    for (kind, in_slots, out_slot), arc_level in zip(plan.arc_program, plan.arc_levels):
        pending = grouped[arc_level]
        key = (kind, len(in_slots))
        if key not in pending:
            pending[key] = ([[] for _ in in_slots], [])
        in_cols, outs = pending[key]
        for col, slot in zip(in_cols, in_slots):
            col.append(slot)
        outs.append(out_slot)

    batches: List[List[GroupOp]] = []
    for pending in grouped:
        groups: List[GroupOp] = []
        for (kind, _arity), (in_cols, outs) in pending.items():
            ins = tuple(np.asarray(col, dtype=np.intp) for col in in_cols)
            groups.append((kind, ins, np.asarray(outs, dtype=np.intp)))
        batches.append(groups)
    return batches


# ---------------------------------------------------------------------------
# Kernels: each consumes privately gathered (k, words) uint64 arrays and may
# clobber them freely.  Bits above num_patterns in the last word may carry
# garbage (from inversions); callers mask at extraction time.
# ---------------------------------------------------------------------------


def _k_buf(srcs: Sequence[np.ndarray]) -> np.ndarray:
    return srcs[0]


def _k_inv(srcs: Sequence[np.ndarray]) -> np.ndarray:
    r = srcs[0]
    np.bitwise_not(r, out=r)
    return r


def _k_and(srcs: Sequence[np.ndarray]) -> np.ndarray:
    r = srcs[0]
    for s in srcs[1:]:
        np.bitwise_and(r, s, out=r)
    return r


def _k_nand(srcs: Sequence[np.ndarray]) -> np.ndarray:
    r = _k_and(srcs)
    np.bitwise_not(r, out=r)
    return r


def _k_or(srcs: Sequence[np.ndarray]) -> np.ndarray:
    r = srcs[0]
    for s in srcs[1:]:
        np.bitwise_or(r, s, out=r)
    return r


def _k_nor(srcs: Sequence[np.ndarray]) -> np.ndarray:
    r = _k_or(srcs)
    np.bitwise_not(r, out=r)
    return r


def _k_xor(srcs: Sequence[np.ndarray]) -> np.ndarray:
    r = srcs[0]
    for s in srcs[1:]:
        np.bitwise_xor(r, s, out=r)
    return r


def _k_xnor(srcs: Sequence[np.ndarray]) -> np.ndarray:
    r = _k_xor(srcs)
    np.bitwise_not(r, out=r)
    return r


def _k_aoi21(srcs: Sequence[np.ndarray]) -> np.ndarray:
    a1, a2, b = srcs
    np.bitwise_and(a1, a2, out=a1)
    np.bitwise_or(a1, b, out=a1)
    np.bitwise_not(a1, out=a1)
    return a1


def _k_oai21(srcs: Sequence[np.ndarray]) -> np.ndarray:
    a1, a2, b = srcs
    np.bitwise_or(a1, a2, out=a1)
    np.bitwise_and(a1, b, out=a1)
    np.bitwise_not(a1, out=a1)
    return a1


def _k_mux2(srcs: Sequence[np.ndarray]) -> np.ndarray:
    a, b, s = srcs  # Z = (B & S) | (A & ~S)
    np.bitwise_and(b, s, out=b)
    np.bitwise_not(s, out=s)
    np.bitwise_and(s, a, out=s)
    np.bitwise_or(b, s, out=b)
    return b


_KERNELS = {
    "BUF": _k_buf,
    "INV": _k_inv,
    "AND": _k_and,
    "NAND": _k_nand,
    "OR": _k_or,
    "NOR": _k_nor,
    "XOR": _k_xor,
    "XNOR": _k_xnor,
    "AOI21": _k_aoi21,
    "OAI21": _k_oai21,
    "MUX2": _k_mux2,
}


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_plan(plan: SimPlan, inputs: Mapping[str, int], num_patterns: int,
             x_value: int = 0) -> np.ndarray:
    """Execute ``plan`` over packed patterns; returns the value matrix.

    Args:
        plan: A plan from :func:`compile_plan`.
        inputs: Bigint bit-vector per input name; every name in
            ``plan.input_slots`` must be present (extra names are ignored).
        num_patterns: Number of patterns packed per bit-vector.
        x_value: Bigint pattern assumed for undriven/unconnected nets.

    Returns:
        The ``(num_slots, num_words)`` ``uint64`` value matrix.  Bits above
        ``num_patterns`` in the last word are unspecified; use
        :func:`unpack_bigint` / :func:`mask_tail` when extracting.
    """
    words = num_words(num_patterns)
    mask = (1 << num_patterns) - 1
    values = np.empty((plan.num_slots, words), dtype=np.uint64)
    x_masked = x_value & mask
    if x_masked == 0:
        values.fill(0)
    else:
        values[:] = pack_bigint(x_masked, words)
    for name, slot in plan.input_slots:
        values[slot] = pack_bigint(inputs[name] & mask, words)

    for batch in plan.batches():
        # Gather-before-scatter keeps batches faithful to the sequential
        # interpreter even when a (loop-broken) gate feeds a batch mate.
        gathered = [
            (kind, tuple(values[index] for index in ins), outs)
            for kind, ins, outs in batch
        ]
        for kind, srcs, outs in gathered:
            values[outs] = _KERNELS[kind](srcs)
    return values


# ---------------------------------------------------------------------------
# Bigint executors
#
# The arc program is a plain statement sequence over packed-bigint net
# values; CPython bigint bit-ops on packed pattern words cost ~0.1 us per
# 4096-bit operand — an order of magnitude below NumPy's per-call dispatch —
# which makes this the fastest execution form for the narrow, deep netlists
# the benchmark generators produce.  Execution is tiered:
#
# * the first run of a plan walks the op tuples through a small interpreter
#   (no start-up cost — important for the randomizer loop, which mutates the
#   candidate netlist between metric calls and therefore recompiles);
# * a re-executed plan is specialized via exec() into one Python function
#   whose locals are the live net slots (`v37 = (v12 & v31) ^ M`), removing
#   the interpreter's dispatch overhead for hot plans.
#
# Both forms replay the legacy interpreter's statement sequence, so
# bit-exactness is structural.
# ---------------------------------------------------------------------------


def _i_buf(vals, ins, M):
    return vals[ins[0]]


def _i_inv(vals, ins, M):
    return vals[ins[0]] ^ M


def _i_and(vals, ins, M):
    r = M
    for s in ins:
        r &= vals[s]
    return r


def _i_nand(vals, ins, M):
    return _i_and(vals, ins, M) ^ M


def _i_or(vals, ins, M):
    r = 0
    for s in ins:
        r |= vals[s]
    return r


def _i_nor(vals, ins, M):
    return _i_or(vals, ins, M) ^ M


def _i_xor(vals, ins, M):
    r = 0
    for s in ins:
        r ^= vals[s]
    return r


def _i_xnor(vals, ins, M):
    return _i_xor(vals, ins, M) ^ M


def _i_aoi21(vals, ins, M):
    return ((vals[ins[0]] & vals[ins[1]]) | vals[ins[2]]) ^ M


def _i_oai21(vals, ins, M):
    return ((vals[ins[0]] | vals[ins[1]]) & vals[ins[2]]) ^ M


def _i_mux2(vals, ins, M):
    sel = vals[ins[2]]
    return (vals[ins[1]] & sel) | (vals[ins[0]] & (sel ^ M))


_INTERPRETER_OPS = {
    "BUF": _i_buf,
    "INV": _i_inv,
    "AND": _i_and,
    "NAND": _i_nand,
    "OR": _i_or,
    "NOR": _i_nor,
    "XOR": _i_xor,
    "XNOR": _i_xnor,
    "AOI21": _i_aoi21,
    "OAI21": _i_oai21,
    "MUX2": _i_mux2,
}


_BIGINT_TEMPLATES = {
    "BUF": lambda ins: ins[0],
    "INV": lambda ins: f"{ins[0]} ^ M",
    "AND": lambda ins: " & ".join(ins),
    "NAND": lambda ins: f"({' & '.join(ins)}) ^ M",
    "OR": lambda ins: " | ".join(ins),
    "NOR": lambda ins: f"({' | '.join(ins)}) ^ M",
    "XOR": lambda ins: " ^ ".join(ins),
    "XNOR": lambda ins: f"{' ^ '.join(ins)} ^ M",
    "AOI21": lambda ins: f"(({ins[0]} & {ins[1]}) | {ins[2]}) ^ M",
    "OAI21": lambda ins: f"(({ins[0]} | {ins[1]}) & {ins[2]}) ^ M",
    "MUX2": lambda ins: f"({ins[1]} & {ins[2]}) | ({ins[0]} & ({ins[2]} ^ M))",
}


def _build_bigint_fn(plan: SimPlan):
    """exec-compile the arc program into a function over bigint patterns."""
    input_slot_set = {slot for _, slot in plan.input_slots}
    lines = ["def _plan_exec(IN, M, X):"]
    for position, (_name, slot) in enumerate(plan.input_slots):
        lines.append(f"    v{slot} = IN[{position}]")
    # Slots read (or returned) before being written observe the X fill.
    written: set = set()
    x_init: List[int] = []
    seen_x: set = set(input_slot_set)
    for kind, ins, out in plan.arc_program:
        if kind not in _BIGINT_TEMPLATES:
            raise UnsupportedNetlist(f"unknown logic op kind {kind!r}")
        for slot in ins:
            if slot not in written and slot not in seen_x:
                seen_x.add(slot)
                x_init.append(slot)
        written.add(out)
    for slot in plan.result_slots:
        if slot not in written and slot not in seen_x:
            seen_x.add(slot)
            x_init.append(slot)
    for slot in x_init:
        lines.append(f"    v{slot} = X")
    for kind, ins, out in plan.arc_program:
        expr = _BIGINT_TEMPLATES[kind]([f"v{slot}" for slot in ins])
        lines.append(f"    v{out} = {expr}")
    returns = ", ".join(f"v{slot}" for slot in plan.result_slots)
    lines.append(f"    return ({returns}{',' if len(plan.result_slots) == 1 else ''})")
    source = "\n".join(lines)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<simplan:{plan.netlist_name}>", "exec"), namespace)
    return namespace["_plan_exec"]


def run_plan_bigints(plan: SimPlan, inputs: Mapping[str, int], num_patterns: int,
                     x_value: int = 0) -> Dict[int, int]:
    """Execute the plan's bigint program; returns ``{slot: bit-vector}``.

    Covers every slot in ``plan.value_slots`` and ``plan.output_slots``.
    Bit-exact with both :func:`run_plan` and the legacy interpreter.  The
    first execution of a plan is interpreted; re-executions are served by a
    code-generated specialization (see the section comment above).
    """
    mask = (1 << num_patterns) - 1
    x_masked = x_value & mask
    if plan._bigint_fn is None and plan._bigint_runs >= 1:
        plan._bigint_fn = _build_bigint_fn(plan)
    plan._bigint_runs += 1
    if plan._bigint_fn is not None:
        packed_inputs = [inputs[name] & mask for name, _slot in plan.input_slots]
        results = plan._bigint_fn(packed_inputs, mask, x_masked)
        return dict(zip(plan.result_slots, results))

    vals: List[int] = [x_masked] * plan.num_slots
    for name, slot in plan.input_slots:
        vals[slot] = inputs[name] & mask
    ops = _INTERPRETER_OPS
    for kind, ins, out in plan.arc_program:
        vals[out] = ops[kind](vals, ins, mask)
    return {slot: vals[slot] for slot in plan.result_slots}


def extract_outputs(plan: SimPlan, values: np.ndarray,
                    num_patterns: int) -> Dict[str, int]:
    """Primary-output bigints of an executed plan."""
    return {
        po: unpack_bigint(values[slot], num_patterns)
        for po, slot in plan.output_slots
    }


def extract_values(plan: SimPlan, values: np.ndarray,
                   num_patterns: int) -> Dict[str, int]:
    """Per-net bigints matching the legacy interpreter's values dict."""
    return {
        net: unpack_bigint(values[slot], num_patterns)
        for net, slot in plan.value_slots
    }


def value_popcounts(plan: SimPlan, values: np.ndarray,
                    num_patterns: int) -> Dict[str, int]:
    """Set-bit count per recorded net (for toggle/probability statistics)."""
    slots = np.asarray([slot for _, slot in plan.value_slots], dtype=np.intp)
    if slots.size == 0:
        return {}
    rows = values[slots]
    mask_tail(rows, num_patterns)
    counts = popcount_rows(rows)
    return {
        net: int(count)
        for (net, _), count in zip(plan.value_slots, counts)
    }
