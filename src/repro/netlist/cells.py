"""Standard-cell library modelled on the Nangate FreePDK45 Open Cell Library.

The paper implements its flow on top of the Nangate 45 nm library with ten
metal layers.  The actual Liberty/LEF files are not redistributable here, so
this module provides a compact re-implementation carrying the quantities the
rest of the library needs:

* **logic function** — evaluated bit-parallel by :mod:`repro.netlist.simulate`;
* **area** (µm²) and **cell dimensions** (µm) — used by the placer, the
  legalizer and the area metric;
* **input pin capacitance** (fF) — used by the power model and by the
  load-capacitance hint of the network-flow attack;
* **drive resistance** (kΩ), **intrinsic delay** (ps) and **maximum load**
  (fF) — used by the Elmore-delay static timing analysis;
* **leakage power** (nW) and **internal switching energy** (fJ per toggle) —
  used by the power model.

Numbers are representative of the Nangate FreePDK45 typical corner; they are
not copies of the vendor data but are in the same range so that relative PPA
comparisons behave like the paper's.

Two *custom* cells from the paper are also defined here:

* ``CORRECTION`` — the 2-input/2-output correction cell (inputs ``C``/``D``,
  outputs ``Y``/``Z``) whose pins live in a high metal layer (M6 or M8) and
  which is allowed to overlap standard cells because it occupies no device
  area;
* ``LIFT`` — the naive-lifting cell used for the paper's baseline, again a
  BEOL-only cell.

Both use the electrical characteristics of ``BUFX2`` as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

# Nangate45-like geometry: standard-cell row height and placement site width.
ROW_HEIGHT_UM = 1.4
SITE_WIDTH_UM = 0.19

# Number of metal layers in the stack used throughout the reproduction.
NUM_METAL_LAYERS = 10


class CellFunctionError(ValueError):
    """Raised when a cell's logic function cannot be evaluated."""


@dataclass(frozen=True)
class CellPin:
    """A pin of a library cell.

    Attributes:
        name: Pin name, e.g. ``"A1"`` or ``"ZN"``.
        direction: ``"input"`` or ``"output"``.
        capacitance_ff: Input capacitance in femtofarads (0 for outputs).
        layer: Metal layer the physical pin shape sits on (1 == M1).  Standard
            cells keep their pins in M1; correction/lifting cells expose their
            pins in M6 or M8 as the paper requires.
    """

    name: str
    direction: str
    capacitance_ff: float = 0.0
    layer: int = 1

    def is_input(self) -> bool:
        return self.direction == "input"

    def is_output(self) -> bool:
        return self.direction == "output"


@dataclass(frozen=True)
class Cell:
    """A standard-cell (or custom BEOL cell) master.

    Attributes:
        name: Library cell name, e.g. ``"NAND2_X1"``.
        pins: Tuple of :class:`CellPin`.
        function: Callable evaluating the cell output(s) bit-parallel.  It
            receives a mapping from input pin name to integer bit-vector plus
            the bit mask, and returns a mapping from output pin name to
            integer bit-vector.
        area_um2: Cell area in µm².
        width_um / height_um: Footprint used by placement and legalization.
        drive_resistance_kohm: Output drive resistance (kΩ) for Elmore delay.
        intrinsic_delay_ps: Intrinsic (load-independent) delay in ps.
        max_load_ff: Maximum capacitive load the output can drive.
        leakage_nw: Leakage power in nW.
        switch_energy_fj: Internal energy per output toggle in fJ.
        is_sequential: True for flip-flops/latches.
        beol_only: True for correction/lifting cells which occupy no FEOL
            resources and may overlap standard cells.
        logic_ops: Structured description of the logic function as a tuple of
            arcs ``(output_pin, op_kind, input_pins)``; the vectorized
            simulation engine (:mod:`repro.netlist.engine`) compiles these
            into NumPy kernels.  ``None`` means the cell can only be evaluated
            through ``function`` (the engine then falls back to the legacy
            bigint interpreter).
    """

    name: str
    pins: Tuple[CellPin, ...]
    function: Optional[Callable[[Mapping[str, int], int], Mapping[str, int]]]
    area_um2: float
    width_um: float
    height_um: float = ROW_HEIGHT_UM
    drive_resistance_kohm: float = 1.0
    intrinsic_delay_ps: float = 20.0
    max_load_ff: float = 60.0
    leakage_nw: float = 10.0
    switch_energy_fj: float = 1.0
    is_sequential: bool = False
    beol_only: bool = False
    logic_ops: Optional[Tuple[Tuple[str, str, Tuple[str, ...]], ...]] = None

    @property
    def input_pins(self) -> List[CellPin]:
        return [p for p in self.pins if p.is_input()]

    @property
    def output_pins(self) -> List[CellPin]:
        return [p for p in self.pins if p.is_output()]

    @property
    def input_capacitance_ff(self) -> float:
        """Total input capacitance (used as a coarse fan-in load figure)."""
        return sum(p.capacitance_ff for p in self.input_pins)

    def pin(self, name: str) -> CellPin:
        for p in self.pins:
            if p.name == name:
                return p
        raise KeyError(f"cell {self.name} has no pin {name!r}")

    def evaluate(self, inputs: Mapping[str, int], mask: int) -> Mapping[str, int]:
        """Evaluate the cell function bit-parallel.

        Args:
            inputs: Mapping of input pin name to integer bit-vector.
            mask: Bit mask of width equal to the number of simulated patterns.
        """
        if self.function is None:
            raise CellFunctionError(f"cell {self.name} has no logic function")
        missing = [p.name for p in self.input_pins if p.name not in inputs]
        if missing:
            raise CellFunctionError(
                f"cell {self.name}: missing input values for pins {missing}"
            )
        return self.function(inputs, mask)


class CellLibrary:
    """A collection of :class:`Cell` masters indexed by name."""

    def __init__(self, name: str, cells: Iterable[Cell]):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: Cell) -> None:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell {cell.name!r} in library {self.name!r}")
        self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from None

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, name: str, default: Optional[Cell] = None) -> Optional[Cell]:
        return self._cells.get(name, default)

    def names(self) -> List[str]:
        return sorted(self._cells)

    def combinational_cells(self) -> List[Cell]:
        return [c for c in self._cells.values() if not c.is_sequential and not c.beol_only]


# ---------------------------------------------------------------------------
# Logic-function helpers (bit-parallel over Python big integers)
#
# The n-ary functions are frozen-dataclass callables rather than closures so
# that cells (and hence netlists, layouts and whole protection artefacts) can
# be pickled across process boundaries by the parallel experiment runner.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NaryLogicFn:
    """Picklable bit-parallel AND/NAND/OR/NOR over a fixed input-pin tuple."""

    kind: str  # "AND" | "NAND" | "OR" | "NOR"
    pins: Tuple[str, ...]
    out: str = "ZN"

    def __call__(self, inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
        if self.kind in ("AND", "NAND"):
            value = mask
            for name in self.pins:
                value &= inputs[name]
        else:
            value = 0
            for name in self.pins:
                value |= inputs[name]
        if self.kind in ("NAND", "NOR"):
            value = ~value
        return {self.out: value & mask}


def _fn_inv(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    return {"ZN": (~inputs["A"]) & mask}


def _fn_buf(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    return {"Z": inputs["A"] & mask}


def _nary_pins(n: int) -> Tuple[str, ...]:
    return tuple(f"A{i + 1}" for i in range(n))


def _make_and(n: int) -> Callable[[Mapping[str, int], int], Dict[str, int]]:
    return NaryLogicFn("AND", _nary_pins(n))


def _make_nand(n: int) -> Callable[[Mapping[str, int], int], Dict[str, int]]:
    return NaryLogicFn("NAND", _nary_pins(n))


def _make_or(n: int) -> Callable[[Mapping[str, int], int], Dict[str, int]]:
    return NaryLogicFn("OR", _nary_pins(n))


def _make_nor(n: int) -> Callable[[Mapping[str, int], int], Dict[str, int]]:
    return NaryLogicFn("NOR", _nary_pins(n))


def _fn_xor2(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    return {"Z": (inputs["A1"] ^ inputs["A2"]) & mask}


def _fn_xnor2(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    return {"ZN": (~(inputs["A1"] ^ inputs["A2"])) & mask}


def _fn_aoi21(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    return {"ZN": (~((inputs["A1"] & inputs["A2"]) | inputs["B"])) & mask}


def _fn_oai21(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    return {"ZN": (~((inputs["A1"] | inputs["A2"]) & inputs["B"])) & mask}


def _fn_mux2(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    sel = inputs["S"]
    return {"Z": ((inputs["B"] & sel) | (inputs["A"] & ~sel)) & mask}


def _fn_correction(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    """Correction cell modelled as a 2-input/2-output OR gate.

    The paper models correction cells as 2-input-2-output OR gates with four
    timing arcs (C→Y, C→Z, D→Y, D→Z); electrically the cell is transparent
    (wires in the BEOL).  For logic purposes we propagate each input to its
    *true-path* output (C→Y, D→Z) — the erroneous arcs are only a routing
    artefact and are disabled when the functionality is restored.
    """
    return {"Y": inputs["C"] & mask, "Z": inputs["D"] & mask}


def _fn_lift(inputs: Mapping[str, int], mask: int) -> Dict[str, int]:
    return {"Y": inputs["C"] & mask}


#: Logic-op arcs of the fixed-form cell functions, keyed by function object.
_FIXED_FN_OPS: Dict[Callable, Tuple[Tuple[str, str, Tuple[str, ...]], ...]] = {
    _fn_inv: (("ZN", "INV", ("A",)),),
    _fn_buf: (("Z", "BUF", ("A",)),),
    _fn_xor2: (("Z", "XOR", ("A1", "A2")),),
    _fn_xnor2: (("ZN", "XNOR", ("A1", "A2")),),
    _fn_aoi21: (("ZN", "AOI21", ("A1", "A2", "B")),),
    _fn_oai21: (("ZN", "OAI21", ("A1", "A2", "B")),),
    _fn_mux2: (("Z", "MUX2", ("A", "B", "S")),),
    _fn_correction: (("Y", "BUF", ("C",)), ("Z", "BUF", ("D",))),
    _fn_lift: (("Y", "BUF", ("C",)),),
}


def derive_logic_ops(
    fn: Optional[Callable[[Mapping[str, int], int], Mapping[str, int]]],
) -> Optional[Tuple[Tuple[str, str, Tuple[str, ...]], ...]]:
    """Return the ``logic_ops`` arcs for a known cell function (else ``None``)."""
    if fn is None:
        return None
    if isinstance(fn, NaryLogicFn):
        return ((fn.out, fn.kind, fn.pins),)
    return _FIXED_FN_OPS.get(fn)


# ---------------------------------------------------------------------------
# Library construction
# ---------------------------------------------------------------------------


def _inputs(names: Sequence[str], cap: float) -> List[CellPin]:
    return [CellPin(name, "input", cap) for name in names]


def _outputs(names: Sequence[str]) -> List[CellPin]:
    return [CellPin(name, "output", 0.0) for name in names]


def _cell(
    name: str,
    in_names: Sequence[str],
    out_names: Sequence[str],
    fn: Optional[Callable[[Mapping[str, int], int], Mapping[str, int]]],
    *,
    cap: float,
    width_sites: int,
    drive: float,
    delay: float,
    leak: float,
    energy: float,
    max_load: float = 60.0,
    sequential: bool = False,
) -> Cell:
    width = width_sites * SITE_WIDTH_UM
    return Cell(
        name=name,
        pins=tuple(_inputs(in_names, cap) + _outputs(out_names)),
        function=fn,
        area_um2=round(width * ROW_HEIGHT_UM, 4),
        width_um=round(width, 4),
        drive_resistance_kohm=drive,
        intrinsic_delay_ps=delay,
        max_load_ff=max_load,
        leakage_nw=leak,
        switch_energy_fj=energy,
        is_sequential=sequential,
        logic_ops=derive_logic_ops(fn),
    )


def nangate45_library() -> CellLibrary:
    """Build the Nangate45-like standard-cell library used everywhere.

    The returned :class:`CellLibrary` contains combinational cells in X1/X2/X4
    drive strengths for the common functions, a D flip-flop, and the paper's
    custom ``CORRECTION_M6`` / ``CORRECTION_M8`` / ``LIFT_M6`` / ``LIFT_M8``
    BEOL-only cells.
    """
    cells: List[Cell] = []

    # name, inputs, outputs, fn, cap(fF), width(sites), drive(kΩ), delay(ps),
    # leakage(nW), energy(fJ)
    cells.append(_cell("INV_X1", ["A"], ["ZN"], _fn_inv, cap=1.0, width_sites=2,
                       drive=1.4, delay=8.0, leak=10.0, energy=0.4))
    cells.append(_cell("INV_X2", ["A"], ["ZN"], _fn_inv, cap=1.9, width_sites=3,
                       drive=0.8, delay=7.0, leak=18.0, energy=0.7, max_load=120.0))
    cells.append(_cell("INV_X4", ["A"], ["ZN"], _fn_inv, cap=3.7, width_sites=5,
                       drive=0.45, delay=6.5, leak=34.0, energy=1.3, max_load=240.0))
    cells.append(_cell("BUF_X1", ["A"], ["Z"], _fn_buf, cap=1.0, width_sites=3,
                       drive=1.3, delay=16.0, leak=14.0, energy=0.8))
    cells.append(_cell("BUF_X2", ["A"], ["Z"], _fn_buf, cap=1.2, width_sites=4,
                       drive=0.75, delay=14.0, leak=22.0, energy=1.2, max_load=130.0))
    cells.append(_cell("BUF_X4", ["A"], ["Z"], _fn_buf, cap=1.6, width_sites=6,
                       drive=0.42, delay=13.0, leak=40.0, energy=2.0, max_load=260.0))
    cells.append(_cell("BUF_X8", ["A"], ["Z"], _fn_buf, cap=2.3, width_sites=9,
                       drive=0.24, delay=12.5, leak=76.0, energy=3.6, max_load=500.0))

    cells.append(_cell("NAND2_X1", ["A1", "A2"], ["ZN"], _make_nand(2), cap=1.1,
                       width_sites=3, drive=1.5, delay=10.0, leak=15.0, energy=0.7))
    cells.append(_cell("NAND2_X2", ["A1", "A2"], ["ZN"], _make_nand(2), cap=2.1,
                       width_sites=4, drive=0.85, delay=9.0, leak=28.0, energy=1.2,
                       max_load=120.0))
    cells.append(_cell("NAND3_X1", ["A1", "A2", "A3"], ["ZN"], _make_nand(3), cap=1.2,
                       width_sites=4, drive=1.7, delay=13.0, leak=20.0, energy=0.9))
    cells.append(_cell("NAND4_X1", ["A1", "A2", "A3", "A4"], ["ZN"], _make_nand(4),
                       cap=1.3, width_sites=5, drive=1.9, delay=16.0, leak=26.0,
                       energy=1.1))
    cells.append(_cell("NOR2_X1", ["A1", "A2"], ["ZN"], _make_nor(2), cap=1.2,
                       width_sites=3, drive=1.8, delay=11.0, leak=16.0, energy=0.8))
    cells.append(_cell("NOR2_X2", ["A1", "A2"], ["ZN"], _make_nor(2), cap=2.3,
                       width_sites=4, drive=1.0, delay=10.0, leak=30.0, energy=1.3,
                       max_load=120.0))
    cells.append(_cell("NOR3_X1", ["A1", "A2", "A3"], ["ZN"], _make_nor(3), cap=1.3,
                       width_sites=4, drive=2.1, delay=14.5, leak=21.0, energy=1.0))
    cells.append(_cell("NOR4_X1", ["A1", "A2", "A3", "A4"], ["ZN"], _make_nor(4),
                       cap=1.4, width_sites=5, drive=2.4, delay=18.0, leak=27.0,
                       energy=1.2))
    cells.append(_cell("AND2_X1", ["A1", "A2"], ["ZN"], _make_and(2), cap=1.1,
                       width_sites=4, drive=1.4, delay=17.0, leak=19.0, energy=1.0))
    cells.append(_cell("AND3_X1", ["A1", "A2", "A3"], ["ZN"], _make_and(3), cap=1.2,
                       width_sites=5, drive=1.5, delay=19.0, leak=24.0, energy=1.2))
    cells.append(_cell("AND4_X1", ["A1", "A2", "A3", "A4"], ["ZN"], _make_and(4),
                       cap=1.3, width_sites=6, drive=1.6, delay=21.0, leak=29.0,
                       energy=1.4))
    cells.append(_cell("OR2_X1", ["A1", "A2"], ["ZN"], _make_or(2), cap=1.2,
                       width_sites=4, drive=1.5, delay=18.0, leak=20.0, energy=1.0))
    cells.append(_cell("OR3_X1", ["A1", "A2", "A3"], ["ZN"], _make_or(3), cap=1.3,
                       width_sites=5, drive=1.6, delay=20.5, leak=25.0, energy=1.2))
    cells.append(_cell("OR4_X1", ["A1", "A2", "A3", "A4"], ["ZN"], _make_or(4),
                       cap=1.4, width_sites=6, drive=1.7, delay=22.5, leak=30.0,
                       energy=1.4))
    cells.append(_cell("XOR2_X1", ["A1", "A2"], ["Z"], _fn_xor2, cap=1.9,
                       width_sites=5, drive=1.8, delay=24.0, leak=32.0, energy=1.8))
    cells.append(_cell("XNOR2_X1", ["A1", "A2"], ["ZN"], _fn_xnor2, cap=1.9,
                       width_sites=5, drive=1.8, delay=24.0, leak=32.0, energy=1.8))
    cells.append(_cell("AOI21_X1", ["A1", "A2", "B"], ["ZN"], _fn_aoi21, cap=1.3,
                       width_sites=4, drive=1.9, delay=14.0, leak=22.0, energy=1.0))
    cells.append(_cell("OAI21_X1", ["A1", "A2", "B"], ["ZN"], _fn_oai21, cap=1.3,
                       width_sites=4, drive=1.9, delay=14.0, leak=22.0, energy=1.0))
    cells.append(_cell("MUX2_X1", ["A", "B", "S"], ["Z"], _fn_mux2, cap=1.6,
                       width_sites=6, drive=1.7, delay=26.0, leak=35.0, energy=1.9))

    # Sequential element; the randomizer treats flop boundaries like primary
    # inputs/outputs so combinational loops are judged per stage.
    cells.append(_cell("DFF_X1", ["D", "CK"], ["Q"], None, cap=1.5, width_sites=9,
                       drive=1.2, delay=70.0, leak=95.0, energy=4.0, sequential=True))

    library = CellLibrary("nangate45_repro", cells)

    # Custom BEOL-only cells (paper Sec. 4).  Electrical characteristics follow
    # BUF_X2 as prescribed; the pins live in high metal layers.
    buf = library["BUF_X2"]
    for lift_layer in (6, 8):
        library.add(
            Cell(
                name=f"CORRECTION_M{lift_layer}",
                pins=(
                    CellPin("C", "input", buf.pin("A").capacitance_ff, layer=lift_layer),
                    CellPin("D", "input", buf.pin("A").capacitance_ff, layer=lift_layer),
                    CellPin("Y", "output", 0.0, layer=lift_layer),
                    CellPin("Z", "output", 0.0, layer=lift_layer),
                ),
                function=_fn_correction,
                area_um2=0.0,
                width_um=4 * SITE_WIDTH_UM,
                drive_resistance_kohm=buf.drive_resistance_kohm,
                intrinsic_delay_ps=buf.intrinsic_delay_ps,
                max_load_ff=buf.max_load_ff,
                leakage_nw=0.0,
                switch_energy_fj=buf.switch_energy_fj,
                beol_only=True,
                logic_ops=derive_logic_ops(_fn_correction),
            )
        )
        library.add(
            Cell(
                name=f"LIFT_M{lift_layer}",
                pins=(
                    CellPin("C", "input", buf.pin("A").capacitance_ff, layer=lift_layer),
                    CellPin("Y", "output", 0.0, layer=lift_layer),
                ),
                function=_fn_lift,
                area_um2=0.0,
                width_um=2 * SITE_WIDTH_UM,
                drive_resistance_kohm=buf.drive_resistance_kohm,
                intrinsic_delay_ps=buf.intrinsic_delay_ps,
                max_load_ff=buf.max_load_ff,
                leakage_nw=0.0,
                switch_energy_fj=buf.switch_energy_fj,
                beol_only=True,
                logic_ops=derive_logic_ops(_fn_lift),
            )
        )

    return library


#: Module-level singleton; building the library is cheap but callers share one.
_DEFAULT_LIBRARY: Optional[CellLibrary] = None


def default_library() -> CellLibrary:
    """Return the shared default :func:`nangate45_library` instance."""
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = nangate45_library()
    return _DEFAULT_LIBRARY
