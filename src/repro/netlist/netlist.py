"""Gate-level netlist data model.

The model is deliberately simple and explicit:

* a :class:`Netlist` owns :class:`Gate` and :class:`Net` objects by name;
* every :class:`Net` has exactly one driver — either a gate output pin or a
  primary input — and any number of sinks (gate input pins and/or primary
  outputs);
* connectivity edits go through :meth:`Netlist.connect_pin` /
  :meth:`Netlist.disconnect_pin` so the driver/sink bookkeeping can never go
  stale.

The netlist randomizer of the protection scheme (``repro.core.randomizer``)
only ever *re-targets sink pins to different nets*; gates, pins and net
drivers are untouched, exactly as in the paper where drivers keep their output
wire and only the driver→sink association is swapped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.netlist.cells import Cell, CellLibrary, default_library


class NetlistError(ValueError):
    """Raised for inconsistent netlist edits (unknown pins, double drivers...)."""


class PortDirection(enum.Enum):
    """Direction of a top-level port."""

    INPUT = "input"
    OUTPUT = "output"


#: A pin reference: (gate name, pin name).
PinRef = Tuple[str, str]


@dataclass
class Gate:
    """An instantiated library cell.

    Attributes:
        name: Instance name, unique within the netlist.
        cell: The :class:`~repro.netlist.cells.Cell` master.
        connections: Mapping of pin name to net name (absent = unconnected).
        dont_touch: Marks gates that physical-design steps must not restructure
            (the paper marks swapped drivers/sinks as *do not touch*).
    """

    name: str
    cell: Cell
    connections: Dict[str, str] = field(default_factory=dict)
    dont_touch: bool = False

    def net_on(self, pin: str) -> Optional[str]:
        """Return the net connected to ``pin`` or ``None``."""
        return self.connections.get(pin)

    @property
    def output_pin_names(self) -> List[str]:
        return [p.name for p in self.cell.output_pins]

    @property
    def input_pin_names(self) -> List[str]:
        return [p.name for p in self.cell.input_pins]


@dataclass
class Net:
    """A signal net with one driver and a list of sinks.

    Attributes:
        name: Net name, unique within the netlist.
        driver: ``(gate, pin)`` driving the net, or ``None`` if the net is
            driven by the primary input of the same name (or is floating).
        sinks: Gate input pins the net fans out to.
        is_primary_input: True if the net is a top-level input.
        primary_outputs: Names of top-level outputs fed by this net.
    """

    name: str
    driver: Optional[PinRef] = None
    sinks: List[PinRef] = field(default_factory=list)
    is_primary_input: bool = False
    primary_outputs: List[str] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        """Number of sinks including primary outputs."""
        return len(self.sinks) + len(self.primary_outputs)

    def has_driver(self) -> bool:
        return self.driver is not None or self.is_primary_input


class Netlist:
    """A flat, single-module gate-level netlist."""

    def __init__(self, name: str, library: Optional[CellLibrary] = None):
        self.name = name
        self.library = library if library is not None else default_library()
        self.gates: Dict[str, Gate] = {}
        self.nets: Dict[str, Net] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        #: Net feeding each primary output (often the net of the same name).
        self.output_nets: Dict[str, str] = {}
        #: Monotonic counter bumped on every structural edit; consumers such
        #: as the vectorized simulation engine key their compiled-plan caches
        #: on it so stale plans are never executed.
        self._topology_version: int = 0

    @property
    def topology_version(self) -> int:
        """Current structural-edit generation of the netlist."""
        return self._topology_version

    def _bump_version(self) -> None:
        self._topology_version += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_primary_input(self, name: str) -> Net:
        """Declare a primary input; creates (or marks) the net of that name."""
        if name in self.primary_inputs:
            raise NetlistError(f"primary input {name!r} already declared")
        net = self.nets.get(name)
        if net is None:
            net = self.add_net(name)
        if net.driver is not None:
            raise NetlistError(f"net {name!r} already has a gate driver")
        net.is_primary_input = True
        self.primary_inputs.append(name)
        self._bump_version()
        return net

    def add_primary_output(self, name: str, net_name: Optional[str] = None) -> None:
        """Declare a primary output fed by ``net_name`` (default: same name)."""
        if name in self.primary_outputs:
            raise NetlistError(f"primary output {name!r} already declared")
        net_name = net_name if net_name is not None else name
        net = self.nets.get(net_name)
        if net is None:
            net = self.add_net(net_name)
        self.primary_outputs.append(name)
        self.output_nets[name] = net_name
        net.primary_outputs.append(name)
        self._bump_version()

    def add_net(self, name: str) -> Net:
        if name in self.nets:
            raise NetlistError(f"net {name!r} already exists")
        net = Net(name)
        self.nets[name] = net
        self._bump_version()
        return net

    def get_or_add_net(self, name: str) -> Net:
        return self.nets[name] if name in self.nets else self.add_net(name)

    def add_gate(self, name: str, cell_name: str,
                 connections: Optional[Dict[str, str]] = None) -> Gate:
        """Instantiate ``cell_name`` as gate ``name`` and connect its pins.

        ``connections`` maps pin names to net names; nets are created on
        demand.
        """
        if name in self.gates:
            raise NetlistError(f"gate {name!r} already exists")
        cell = self.library[cell_name]
        gate = Gate(name=name, cell=cell)
        self.gates[name] = gate
        self._bump_version()
        if connections:
            for pin, net_name in connections.items():
                self.connect_pin(name, pin, net_name)
        return gate

    def remove_gate(self, name: str) -> None:
        """Remove gate ``name``, disconnecting all of its pins."""
        gate = self.gates[name]
        for pin in list(gate.connections):
            self.disconnect_pin(name, pin)
        del self.gates[name]
        self._bump_version()

    # ------------------------------------------------------------------
    # Connectivity editing
    # ------------------------------------------------------------------
    def connect_pin(self, gate_name: str, pin_name: str, net_name: str) -> None:
        """Connect ``gate_name.pin_name`` to ``net_name`` (created on demand)."""
        gate = self.gates[gate_name]
        pin = gate.cell.pin(pin_name)
        if gate.net_on(pin_name) is not None:
            self.disconnect_pin(gate_name, pin_name)
        net = self.get_or_add_net(net_name)
        if pin.is_output():
            if net.driver is not None and net.driver != (gate_name, pin_name):
                raise NetlistError(
                    f"net {net_name!r} already driven by {net.driver}; cannot "
                    f"also connect driver {gate_name}.{pin_name}"
                )
            if net.is_primary_input:
                raise NetlistError(
                    f"net {net_name!r} is a primary input and cannot be driven "
                    f"by {gate_name}.{pin_name}"
                )
            net.driver = (gate_name, pin_name)
        else:
            net.sinks.append((gate_name, pin_name))
        gate.connections[pin_name] = net_name
        self._bump_version()

    def disconnect_pin(self, gate_name: str, pin_name: str) -> None:
        """Disconnect ``gate_name.pin_name`` from its net (if any)."""
        gate = self.gates[gate_name]
        net_name = gate.net_on(pin_name)
        if net_name is None:
            return
        net = self.nets[net_name]
        pin = gate.cell.pin(pin_name)
        if pin.is_output():
            if net.driver == (gate_name, pin_name):
                net.driver = None
        else:
            try:
                net.sinks.remove((gate_name, pin_name))
            except ValueError:
                pass
        del gate.connections[pin_name]
        self._bump_version()

    def move_sink(self, gate_name: str, pin_name: str, new_net: str) -> str:
        """Re-target the sink ``gate_name.pin_name`` to ``new_net``.

        Returns the name of the net the sink was previously connected to.
        This is the primitive operation used by the netlist randomizer and by
        the BEOL restoration step.
        """
        gate = self.gates[gate_name]
        pin = gate.cell.pin(pin_name)
        if not pin.is_input():
            raise NetlistError(f"{gate_name}.{pin_name} is not an input pin")
        old_net = gate.net_on(pin_name)
        if old_net is None:
            raise NetlistError(f"{gate_name}.{pin_name} is not connected")
        self.disconnect_pin(gate_name, pin_name)
        self.connect_pin(gate_name, pin_name, new_net)
        return old_net

    def retarget_primary_output(self, po_name: str, new_net: str) -> str:
        """Re-target primary output ``po_name`` to ``new_net``; returns old net."""
        if po_name not in self.primary_outputs:
            raise NetlistError(f"unknown primary output {po_name!r}")
        old_net_name = self.output_nets[po_name]
        old_net = self.nets[old_net_name]
        old_net.primary_outputs.remove(po_name)
        net = self.get_or_add_net(new_net)
        net.primary_outputs.append(po_name)
        self.output_nets[po_name] = new_net
        self._bump_version()
        return old_net_name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def driver_of(self, net_name: str) -> Optional[PinRef]:
        return self.nets[net_name].driver

    def sinks_of(self, net_name: str) -> List[PinRef]:
        return list(self.nets[net_name].sinks)

    def fanout_gates(self, gate_name: str) -> List[str]:
        """Return the gates driven (directly) by any output of ``gate_name``."""
        result: List[str] = []
        gate = self.gates[gate_name]
        for pin in gate.output_pin_names:
            net_name = gate.net_on(pin)
            if net_name is None:
                continue
            for sink_gate, _ in self.nets[net_name].sinks:
                result.append(sink_gate)
        return result

    def fanin_gates(self, gate_name: str) -> List[str]:
        """Return the gates driving the inputs of ``gate_name``."""
        result: List[str] = []
        gate = self.gates[gate_name]
        for pin in gate.input_pin_names:
            net_name = gate.net_on(pin)
            if net_name is None:
                continue
            driver = self.nets[net_name].driver
            if driver is not None:
                result.append(driver[0])
        return result

    def gate_output_net(self, gate_name: str) -> Optional[str]:
        """Return the net on the first connected output pin of ``gate_name``."""
        gate = self.gates[gate_name]
        for pin in gate.output_pin_names:
            net = gate.net_on(pin)
            if net is not None:
                return net
        return None

    def iter_connections(self) -> Iterator[Tuple[str, PinRef]]:
        """Yield every (net name, sink pin) pair in the design."""
        for net in self.nets.values():
            for sink in net.sinks:
                yield net.name, sink

    # ------------------------------------------------------------------
    # Statistics / validation
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_connections(self) -> int:
        """Total number of sink-pin connections (two-pin-net equivalent count)."""
        return sum(len(net.sinks) for net in self.nets.values())

    def cell_area_um2(self) -> float:
        """Total standard-cell area (BEOL-only cells contribute zero)."""
        return sum(g.cell.area_um2 for g in self.gates.values())

    def stats(self) -> Dict[str, float]:
        """Return a dictionary of headline statistics."""
        return {
            "gates": self.num_gates,
            "nets": self.num_nets,
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
            "connections": self.num_connections,
            "cell_area_um2": round(self.cell_area_um2(), 3),
        }

    def validate(self) -> List[str]:
        """Return a list of consistency problems (empty list == clean).

        Checks cover: every gate pin references an existing net, every net
        sink/driver references an existing gate pin, every non-floating net
        has exactly one driver, and primary outputs reference existing nets.
        """
        problems: List[str] = []
        for gate in self.gates.values():
            for pin, net_name in gate.connections.items():
                if net_name not in self.nets:
                    problems.append(f"gate {gate.name}.{pin} references unknown net {net_name}")
                    continue
                net = self.nets[net_name]
                ref = (gate.name, pin)
                if gate.cell.pin(pin).is_output():
                    if net.driver != ref:
                        problems.append(
                            f"net {net_name} driver inconsistent with {gate.name}.{pin}"
                        )
                else:
                    if ref not in net.sinks:
                        problems.append(
                            f"net {net_name} missing sink {gate.name}.{pin}"
                        )
        for net in self.nets.values():
            if net.driver is not None:
                gname, pname = net.driver
                if gname not in self.gates:
                    problems.append(f"net {net.name} driven by unknown gate {gname}")
                elif self.gates[gname].net_on(pname) != net.name:
                    problems.append(f"net {net.name} driver backref broken ({gname}.{pname})")
                if net.is_primary_input:
                    problems.append(f"net {net.name} is both primary input and gate-driven")
            for gname, pname in net.sinks:
                if gname not in self.gates:
                    problems.append(f"net {net.name} sinks unknown gate {gname}")
                elif self.gates[gname].net_on(pname) != net.name:
                    problems.append(f"net {net.name} sink backref broken ({gname}.{pname})")
            if net.sinks or net.primary_outputs:
                if not net.has_driver():
                    problems.append(f"net {net.name} has sinks but no driver")
        for po in self.primary_outputs:
            if self.output_nets.get(po) not in self.nets:
                problems.append(f"primary output {po} references unknown net")
        return problems

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, new_name: Optional[str] = None) -> "Netlist":
        """Return a deep, independent copy of the netlist."""
        clone = Netlist(new_name if new_name is not None else self.name, self.library)
        for net in self.nets.values():
            new_net = clone.add_net(net.name)
            new_net.is_primary_input = net.is_primary_input
        clone.primary_inputs = list(self.primary_inputs)
        clone.primary_outputs = list(self.primary_outputs)
        clone.output_nets = dict(self.output_nets)
        for po, net_name in self.output_nets.items():
            clone.nets[net_name].primary_outputs.append(po)
        for gate in self.gates.values():
            new_gate = Gate(name=gate.name, cell=gate.cell, dont_touch=gate.dont_touch)
            clone.gates[gate.name] = new_gate
            for pin, net_name in gate.connections.items():
                clone.connect_pin(gate.name, pin, net_name)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist(name={self.name!r}, gates={self.num_gates}, "
            f"nets={self.num_nets}, pis={len(self.primary_inputs)}, "
            f"pos={len(self.primary_outputs)})"
        )


def connection_pairs(netlist: Netlist) -> List[Tuple[str, PinRef, Optional[PinRef]]]:
    """Return every driver→sink pair as ``(net, sink_pin, driver_pin)``.

    Primary-input-driven nets yield ``None`` as the driver pin.  This is the
    "two-pin-net view" of the design used by the security metrics (the CCR is
    computed over these pairs).
    """
    pairs: List[Tuple[str, PinRef, Optional[PinRef]]] = []
    for net in netlist.nets.values():
        for sink in net.sinks:
            pairs.append((net.name, sink, net.driver))
    return pairs
