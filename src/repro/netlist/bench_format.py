"""ISCAS ``.bench`` format reader/writer.

The ISCAS-85 combinational benchmarks (c432 … c7552) used in the paper are
traditionally distributed in the ``.bench`` format::

    # c17
    INPUT(1)
    INPUT(2)
    ...
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

This module parses that format into a :class:`~repro.netlist.netlist.Netlist`
mapped onto the Nangate45-like cell library, decomposing wide gates into
trees of the available 2–4-input cells, and can write a netlist back out as
``.bench`` (one generic gate per library gate).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.netlist.cells import CellLibrary, default_library
from repro.netlist.netlist import Netlist, NetlistError

_LINE_RE = re.compile(r"^\s*(?P<out>[\w\[\].$]+)\s*=\s*(?P<op>\w+)\s*\((?P<args>[^)]*)\)\s*$")
_PORT_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([\w\[\].$]+)\s*\)\s*$", re.IGNORECASE)


class BenchFormatError(ValueError):
    """Raised when a ``.bench`` description cannot be parsed or mapped."""


#: Generic operator → (library cell prefix, inverting?).  Width is appended.
_OP_FAMILIES = {
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
}

#: Maximum fan-in available in the library for each family.
_MAX_FANIN = {"AND": 4, "NAND": 4, "OR": 4, "NOR": 4}


def _sanitize(name: str) -> str:
    """Make a ``.bench`` signal name safe for use as a net/gate name."""
    return name.replace("[", "_").replace("]", "_").replace(".", "_")


def _cell_for(op: str, fanin: int) -> str:
    if op == "NOT":
        return "INV_X1"
    if op in ("BUF", "BUFF"):
        return "BUF_X1"
    if op == "XOR":
        if fanin != 2:
            raise BenchFormatError("only 2-input XOR is mapped directly")
        return "XOR2_X1"
    if op == "XNOR":
        if fanin != 2:
            raise BenchFormatError("only 2-input XNOR is mapped directly")
        return "XNOR2_X1"
    if op in _OP_FAMILIES:
        return f"{_OP_FAMILIES[op]}{fanin}_X1"
    raise BenchFormatError(f"unsupported bench operator {op!r}")


def _emit_gate(netlist: Netlist, name: str, cell: str, inputs: Sequence[str],
               output_net: str) -> None:
    cell_obj = netlist.library[cell]
    input_pin_names = [p.name for p in cell_obj.input_pins]
    if len(inputs) != len(input_pin_names):
        raise BenchFormatError(
            f"cell {cell} expects {len(input_pin_names)} inputs, got {len(inputs)}"
        )
    connections = dict(zip(input_pin_names, inputs))
    out_pin = cell_obj.output_pins[0].name
    connections[out_pin] = output_net
    netlist.add_gate(name, cell, connections)


def _decompose(netlist: Netlist, signal: str, op: str, args: List[str],
               counter: List[int]) -> None:
    """Map one generic bench gate onto library cells, splitting wide gates.

    Wide AND/OR gates become balanced trees of the widest available cell;
    wide NAND/NOR become an AND/OR tree followed by a final NAND/NOR stage;
    wide XOR/XNOR become 2-input chains.  The final stage always drives the
    net named ``signal``.
    """
    fanin = len(args)
    if op in ("NOT", "BUF", "BUFF"):
        if fanin != 1:
            raise BenchFormatError(f"{op} expects 1 input, got {fanin}")
        _emit_gate(netlist, f"g_{signal}", _cell_for(op, 1), args, signal)
        return
    if op in ("XOR", "XNOR") and fanin > 2:
        # Chain: intermediate XORs, final stage carries the (X)NOR polarity.
        current = args[0]
        for i, nxt in enumerate(args[1:-1]):
            counter[0] += 1
            tmp = f"{signal}__x{counter[0]}"
            _emit_gate(netlist, f"g_{tmp}", "XOR2_X1", [current, nxt], tmp)
            current = tmp
        final_cell = "XOR2_X1" if op == "XOR" else "XNOR2_X1"
        _emit_gate(netlist, f"g_{signal}", final_cell, [current, args[-1]], signal)
        return
    if op in ("XOR", "XNOR"):
        if fanin != 2:
            raise BenchFormatError(f"{op} expects >=2 inputs")
        _emit_gate(netlist, f"g_{signal}", _cell_for(op, 2), args, signal)
        return
    if op not in _OP_FAMILIES:
        raise BenchFormatError(f"unsupported bench operator {op!r}")
    if fanin == 1:
        # Degenerate 1-input AND/OR is a buffer; NAND/NOR is an inverter.
        cell = "BUF_X1" if op in ("AND", "OR") else "INV_X1"
        _emit_gate(netlist, f"g_{signal}", cell, args, signal)
        return
    max_width = _MAX_FANIN[op]
    if fanin <= max_width:
        _emit_gate(netlist, f"g_{signal}", _cell_for(op, fanin), args, signal)
        return
    # Wide gate: reduce with the non-inverting family, final stage keeps polarity.
    base_family = "AND" if op in ("AND", "NAND") else "OR"
    work = list(args)
    while len(work) > max_width:
        group, work = work[:max_width], work[max_width:]
        counter[0] += 1
        tmp = f"{signal}__t{counter[0]}"
        _emit_gate(netlist, f"g_{tmp}", f"{base_family}{len(group)}_X1", group, tmp)
        work.append(tmp)
    _emit_gate(netlist, f"g_{signal}", _cell_for(op, len(work)), work, signal)


def parse_bench(text: str, name: str = "bench",
                library: Optional[CellLibrary] = None) -> Netlist:
    """Parse a ``.bench`` description into a :class:`Netlist`.

    Args:
        text: Contents of the ``.bench`` file.
        name: Name for the resulting netlist.
        library: Cell library to map onto (default Nangate45-like).
    """
    netlist = Netlist(name, library if library is not None else default_library())
    outputs: List[str] = []
    assignments: List[Tuple[str, str, List[str]]] = []

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        port_match = _PORT_RE.match(line)
        if port_match:
            kind, signal = port_match.group(1).upper(), _sanitize(port_match.group(2))
            if kind == "INPUT":
                netlist.add_primary_input(signal)
            else:
                outputs.append(signal)
            continue
        gate_match = _LINE_RE.match(line)
        if gate_match:
            signal = _sanitize(gate_match.group("out"))
            op = gate_match.group("op").upper()
            args = [_sanitize(a.strip()) for a in gate_match.group("args").split(",") if a.strip()]
            assignments.append((signal, op, args))
            continue
        raise BenchFormatError(f"cannot parse bench line: {raw_line!r}")

    counter = [0]
    for signal, op, args in assignments:
        if op == "DFF":
            if len(args) != 1:
                raise BenchFormatError("DFF expects exactly one input")
            netlist.add_gate(f"g_{signal}", "DFF_X1", {"D": args[0], "Q": signal})
            continue
        _decompose(netlist, signal, op, args, counter)

    for signal in outputs:
        netlist.add_primary_output(signal, signal)

    problems = netlist.validate()
    if problems:
        raise BenchFormatError(
            f"parsed bench netlist is inconsistent: {problems[:3]}"
        )
    return netlist


#: Library cell → generic bench operator used by :func:`write_bench`.
_CELL_TO_OP = {
    "INV": "NOT",
    "BUF": "BUFF",
    "NAND": "NAND",
    "NOR": "NOR",
    "AND": "AND",
    "OR": "OR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "DFF": "DFF",
}


def _op_for_cell(cell_name: str) -> str:
    for prefix, op in _CELL_TO_OP.items():
        if cell_name.startswith(prefix) and not cell_name.startswith("BUFX"):
            return op
    raise BenchFormatError(f"cell {cell_name!r} has no bench equivalent")


def write_bench(netlist: Netlist) -> str:
    """Serialize ``netlist`` back to ``.bench`` text.

    Only netlists made of simple mapped cells (INV/BUF/AND/OR/NAND/NOR/XOR/
    XNOR/DFF) can be written; complex cells (AOI/OAI/MUX, correction cells)
    raise :class:`BenchFormatError`.
    """
    lines = [f"# {netlist.name} (generated by repro)"]
    for pi in netlist.primary_inputs:
        lines.append(f"INPUT({pi})")
    for po in netlist.primary_outputs:
        lines.append(f"OUTPUT({netlist.output_nets[po]})")
    lines.append("")
    for gate in netlist.gates.values():
        op = _op_for_cell(gate.cell.name)
        out_pin = gate.output_pin_names[0]
        out_net = gate.net_on(out_pin)
        in_nets = [gate.net_on(p) for p in gate.input_pin_names if gate.net_on(p)]
        if op == "DFF":
            in_nets = [gate.net_on("D")] if gate.net_on("D") else []
        lines.append(f"{out_net} = {op}({', '.join(n for n in in_nets if n)})")
    return "\n".join(lines) + "\n"
