"""Functional-equivalence checking (stand-in for Synopsys Formality).

The paper validates that the BEOL-restored design is functionally equivalent
to the original with Synopsys Formality.  This module provides:

* :func:`check_equivalence` — a practical check combining exhaustive
  simulation for small input counts with randomized bit-parallel simulation
  for larger designs;
* :class:`EquivalenceResult` — the verdict plus a counterexample pattern when
  a mismatch is found.

Randomized simulation cannot *prove* equivalence, but for this reproduction
the restored netlist is by construction a connectivity-identical copy of the
original, so the check serves as a regression safety net (exactly the role
Formality plays in the paper's flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netlist.netlist import Netlist
from repro.netlist.simulate import random_patterns, simulate, _input_names


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    patterns_checked: int
    exhaustive: bool
    counterexample: Optional[Dict[str, int]] = None
    mismatched_output: Optional[str] = None

    def __bool__(self) -> bool:
        return self.equivalent


#: Input counts up to this limit are checked exhaustively (2**n patterns).
EXHAUSTIVE_INPUT_LIMIT = 14


def _exhaustive_patterns(names, num_patterns: int) -> Dict[str, int]:
    """Build the full truth-table stimulus for ``names`` (bit-parallel)."""
    patterns: Dict[str, int] = {}
    for index, name in enumerate(names):
        value = 0
        period = 1 << index
        bit = 0
        while bit < num_patterns:
            if (bit // period) % 2 == 1:
                # Set a run of `period` bits starting at `bit`.
                run = min(period, num_patterns - bit)
                value |= ((1 << run) - 1) << bit
                bit += run
            else:
                bit += period
        patterns[name] = value
    return patterns


def check_equivalence(reference: Netlist, candidate: Netlist,
                      num_random_patterns: int = 8192,
                      seed: Optional[int] = 0) -> EquivalenceResult:
    """Check whether two netlists implement the same Boolean function.

    Small designs (≤ :data:`EXHAUSTIVE_INPUT_LIMIT` inputs) are checked
    exhaustively; larger designs are checked with ``num_random_patterns``
    random patterns.  Both netlists must expose the same primary outputs; the
    union of their inputs is stimulated (an input absent from one netlist is
    simply ignored by it).
    """
    ref_outputs = set(reference.primary_outputs)
    cand_outputs = set(candidate.primary_outputs)
    if ref_outputs != cand_outputs:
        return EquivalenceResult(
            equivalent=False,
            patterns_checked=0,
            exhaustive=False,
            mismatched_output=next(iter(ref_outputs ^ cand_outputs), None),
        )

    input_names = sorted(set(_input_names(reference)) | set(_input_names(candidate)))
    num_inputs = len(input_names)
    exhaustive = num_inputs <= EXHAUSTIVE_INPUT_LIMIT
    if exhaustive:
        num_patterns = 1 << num_inputs if num_inputs > 0 else 1
        patterns = _exhaustive_patterns(input_names, num_patterns)
    else:
        num_patterns = num_random_patterns
        patterns = random_patterns(input_names, num_patterns, seed)

    ref_result = simulate(reference, patterns, num_patterns, seed)
    cand_result = simulate(candidate, patterns, num_patterns, seed)

    for po in reference.primary_outputs:
        diff = ref_result.outputs[po] ^ cand_result.outputs[po]
        if diff:
            bit = (diff & -diff).bit_length() - 1
            counterexample = {
                name: (patterns[name] >> bit) & 1 for name in input_names
            }
            return EquivalenceResult(
                equivalent=False,
                patterns_checked=num_patterns,
                exhaustive=exhaustive,
                counterexample=counterexample,
                mismatched_output=po,
            )
    return EquivalenceResult(
        equivalent=True, patterns_checked=num_patterns, exhaustive=exhaustive
    )
