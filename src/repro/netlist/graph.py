"""Graph views of a netlist: DAG construction, loops, reachability.

The randomizer must guarantee that no driver→sink swap introduces a
combinational loop (the paper notes that loops would reveal the modification
to an attacker, as the network-flow attack explicitly excludes loop-forming
candidates).  These helpers provide:

* :func:`netlist_to_digraph` — a :class:`networkx.DiGraph` whose nodes are
  gate names (plus pseudo nodes for primary inputs/outputs);
* :func:`has_combinational_loop` / :func:`combinational_loops` — cycle checks
  restricted to combinational cells (flip-flops break cycles);
* :func:`transitive_fanin` / :func:`transitive_fanout` — reachability sets
  used both by the randomizer (fast loop pre-check) and by the attack's
  loop-avoidance hint;
* :func:`topological_gate_order` — evaluation order for simulation and STA.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.netlist.netlist import Netlist

#: Prefix for pseudo-nodes representing primary inputs/outputs in graph views.
PI_PREFIX = "PI::"
PO_PREFIX = "PO::"


def netlist_to_digraph(netlist: Netlist, include_ports: bool = False) -> nx.DiGraph:
    """Build a gate-level directed graph of ``netlist``.

    Nodes are gate names; an edge ``u → v`` exists when an output net of gate
    ``u`` feeds an input pin of gate ``v``.  Sequential cells are included as
    nodes but — by construction of the callers — their edges are treated as
    cut points when checking for *combinational* loops (see
    :func:`combinational_loops`).

    Args:
        netlist: The netlist to convert.
        include_ports: When True, primary inputs/outputs are added as pseudo
            nodes named ``PI::<name>`` / ``PO::<name>`` with corresponding
            edges, which is convenient for plotting and path queries.
    """
    graph = nx.DiGraph()
    for gate_name, gate in netlist.gates.items():
        graph.add_node(gate_name, cell=gate.cell.name, sequential=gate.cell.is_sequential)
    if include_ports:
        for pi in netlist.primary_inputs:
            graph.add_node(PI_PREFIX + pi, cell="__PI__", sequential=False)
        for po in netlist.primary_outputs:
            graph.add_node(PO_PREFIX + po, cell="__PO__", sequential=False)

    for net in netlist.nets.values():
        driver = net.driver
        if driver is None:
            if not net.is_primary_input or not include_ports:
                driver_node = None
            else:
                driver_node = PI_PREFIX + net.name
        else:
            driver_node = driver[0]
        if driver_node is None and not include_ports:
            # Net driven by a primary input (or floating): no gate-to-gate edge.
            continue
        for sink_gate, _pin in net.sinks:
            if driver_node is not None:
                graph.add_edge(driver_node, sink_gate, net=net.name)
        if include_ports:
            for po in net.primary_outputs:
                if driver_node is not None:
                    graph.add_edge(driver_node, PO_PREFIX + po, net=net.name)
    return graph


def _combinational_subgraph(netlist: Netlist, graph: Optional[nx.DiGraph] = None) -> nx.DiGraph:
    """Return the gate graph with sequential cells removed (cycle cut points)."""
    if graph is None:
        graph = netlist_to_digraph(netlist)
    sequential = [n for n, data in graph.nodes(data=True) if data.get("sequential")]
    if not sequential:
        return graph
    sub = graph.copy()
    sub.remove_nodes_from(sequential)
    return sub


def combinational_loops(netlist: Netlist) -> List[List[str]]:
    """Return a list of combinational cycles (each a list of gate names).

    Sequential cells legitimately close feedback paths and are excluded.  An
    empty list means the combinational portion of the design is acyclic.
    """
    sub = _combinational_subgraph(netlist)
    try:
        cycle = nx.find_cycle(sub, orientation="original")
    except nx.NetworkXNoCycle:
        return []
    # Report the single cycle found; enumerating all simple cycles can blow up
    # and callers only need to know *whether* and *where* a loop exists.
    return [[edge[0] for edge in cycle]]


def has_combinational_loop(netlist: Netlist) -> bool:
    """True when the combinational portion of ``netlist`` contains a cycle."""
    sub = _combinational_subgraph(netlist)
    return not nx.is_directed_acyclic_graph(sub)


def transitive_fanout(netlist: Netlist, gate_name: str,
                      graph: Optional[nx.DiGraph] = None) -> Set[str]:
    """Return all gates reachable downstream of ``gate_name`` (exclusive)."""
    if graph is None:
        graph = netlist_to_digraph(netlist)
    if gate_name not in graph:
        return set()
    return set(nx.descendants(graph, gate_name))


def transitive_fanin(netlist: Netlist, gate_name: str,
                     graph: Optional[nx.DiGraph] = None) -> Set[str]:
    """Return all gates in the upstream cone of ``gate_name`` (exclusive)."""
    if graph is None:
        graph = netlist_to_digraph(netlist)
    if gate_name not in graph:
        return set()
    return set(nx.ancestors(graph, gate_name))


def topological_gate_order(netlist: Netlist) -> List[str]:
    """Return gate names in a valid combinational evaluation order.

    Sequential cells are placed first (their outputs act as pseudo-primary
    inputs for the combinational logic they feed).  Raises
    :class:`networkx.NetworkXUnfeasible` if the combinational logic is cyclic.
    """
    graph = netlist_to_digraph(netlist)
    sequential = [n for n, data in graph.nodes(data=True) if data.get("sequential")]
    comb = graph.copy()
    comb.remove_nodes_from(sequential)
    order = list(nx.topological_sort(comb))
    return sequential + order


def _combinational_adjacency(netlist: Netlist):
    """Successor lists and in-degrees of the combinational gate graph.

    Pure-dict equivalent of building :func:`netlist_to_digraph` and removing
    the sequential nodes, but ~20x faster — this sits on the hot path of
    simulation-plan compilation.  Iteration order (nets in insertion order,
    sinks in connection order, edges deduplicated on first insertion) matches
    the networkx construction exactly so the resulting evaluation orders are
    identical.
    """
    successors: Dict[str, Dict[str, None]] = {
        name: {} for name, gate in netlist.gates.items()
        if not gate.cell.is_sequential
    }
    in_degree: Dict[str, int] = {name: 0 for name in successors}
    for net in netlist.nets.values():
        driver = net.driver
        if driver is None or driver[0] not in successors:
            continue
        fanout = successors[driver[0]]
        for sink_gate, _pin in net.sinks:
            if sink_gate in in_degree and sink_gate not in fanout:
                fanout[sink_gate] = None
                in_degree[sink_gate] += 1
    return successors, in_degree


def pseudo_topological_order(netlist: Netlist) -> List[str]:
    """Evaluation order that tolerates combinational loops.

    Attack-recovered netlists can accidentally contain combinational cycles.
    To still be able to simulate them (and measure their OER/HD), cycles are
    broken greedily: gates are peeled off in Kahn order and, when only cyclic
    gates remain, the gate with the fewest unresolved fan-ins is emitted next
    (its unresolved inputs will read as the simulator's default value).
    """
    sequential = [
        name for name, gate in netlist.gates.items() if gate.cell.is_sequential
    ]
    successors, in_degree = _combinational_adjacency(netlist)
    ready = sorted((n for n, d in in_degree.items() if d == 0), reverse=True)
    scheduled = set(ready)
    order: List[str] = []
    num_comb = len(in_degree)
    while len(order) < num_comb:
        if not ready:
            # Break a cycle: pick the unscheduled gate with the fewest open fanins.
            victim = min(
                (n for n in in_degree if n not in scheduled),
                key=lambda n: (in_degree[n], n),
            )
            scheduled.add(victim)
            ready.append(victim)
        gate = ready.pop()
        order.append(gate)
        for succ in successors[gate]:
            if succ in scheduled:
                continue
            in_degree[succ] -= 1
            if in_degree[succ] <= 0:
                scheduled.add(succ)
                ready.append(succ)
    return sequential + order


def logic_depth(netlist: Netlist) -> int:
    """Return the maximum combinational depth (number of gates on the longest path)."""
    sub = _combinational_subgraph(netlist)
    if sub.number_of_nodes() == 0:
        return 0
    return nx.dag_longest_path_length(sub) + 1


def gate_levels(netlist: Netlist) -> Dict[str, int]:
    """Return the topological level (longest distance from any input) per gate."""
    sub = _combinational_subgraph(netlist)
    levels: Dict[str, int] = {}
    for gate in nx.topological_sort(sub):
        preds = list(sub.predecessors(gate))
        levels[gate] = 0 if not preds else 1 + max(levels[p] for p in preds)
    # Sequential gates sit at level 0 (treated as pseudo inputs).
    for gate_name, gate in netlist.gates.items():
        if gate.cell.is_sequential:
            levels.setdefault(gate_name, 0)
    return levels


def transitive_closure_bitmap(graph: nx.DiGraph) -> Tuple[Dict[str, int], np.ndarray]:
    """Packed transitive closure of ``graph`` in one pass.

    Returns ``(index, bitmap)`` where ``index`` maps each node to a row/bit
    position and ``bitmap`` is a ``(n, ceil(n / 64))`` ``uint64`` array whose
    row *i* has bit *j* set iff node *j* is in ``nx.descendants(graph, i)``
    (reachable from *i*, excluding *i* itself).  Cycles are handled through
    the strongly-connected-component condensation, so the helper is safe on
    attack-recovered graphs; for the common DAG case the condensation is the
    identity.  One call replaces *n* per-node ``nx.descendants`` traversals.
    """
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    words = max(1, (n + 63) // 64)
    bitmap = np.zeros((n, words), dtype=np.uint64)
    if n == 0:
        return index, bitmap

    condensation = nx.condensation(graph)
    # Bits of each component's member nodes, in node-index space.
    member_bits = np.zeros((condensation.number_of_nodes(), words), dtype=np.uint64)
    for comp_id, data in condensation.nodes(data=True):
        for node in data["members"]:
            i = index[node]
            member_bits[comp_id, i >> 6] |= np.uint64(1 << (i & 63))
    # Reachable-set per component, accumulated in reverse topological order.
    comp_reach = np.zeros_like(member_bits)
    for comp_id in reversed(list(nx.topological_sort(condensation))):
        row = comp_reach[comp_id]
        for succ in condensation.successors(comp_id):
            np.bitwise_or(row, comp_reach[succ], out=row)
            np.bitwise_or(row, member_bits[succ], out=row)

    comp_of = condensation.graph["mapping"]
    for node in nodes:
        i = index[node]
        comp_id = comp_of[node]
        row = bitmap[i]
        np.bitwise_or(comp_reach[comp_id], member_bits[comp_id], out=row)
        # A node never counts as its own descendant (nx.descendants semantics).
        row[i >> 6] &= ~np.uint64(1 << (i & 63))
    return index, bitmap


def would_create_loop(netlist: Netlist, driver_gate: Optional[str],
                      sink_gate: str, graph: Optional[nx.DiGraph] = None) -> bool:
    """Check whether connecting ``driver_gate`` output to an input of ``sink_gate``
    would create a combinational loop.

    ``driver_gate`` may be ``None`` (primary-input driver), which can never
    create a loop.  The check is a reachability query: a loop appears iff
    ``driver_gate`` is reachable *from* ``sink_gate``, or they are the same
    combinational gate.
    """
    if driver_gate is None:
        return False
    if driver_gate == sink_gate:
        return not netlist.gates[sink_gate].cell.is_sequential
    if netlist.gates[driver_gate].cell.is_sequential:
        return False
    if netlist.gates[sink_gate].cell.is_sequential:
        return False
    if graph is None:
        graph = _combinational_subgraph(netlist)
    if sink_gate not in graph or driver_gate not in graph:
        return False
    return nx.has_path(graph, sink_gate, driver_gate)
