"""Graph views of a netlist: DAG construction, loops, reachability.

The randomizer must guarantee that no driver→sink swap introduces a
combinational loop (the paper notes that loops would reveal the modification
to an attacker, as the network-flow attack explicitly excludes loop-forming
candidates).  These helpers provide:

* :func:`netlist_to_digraph` — a :class:`networkx.DiGraph` whose nodes are
  gate names (plus pseudo nodes for primary inputs/outputs);
* :func:`has_combinational_loop` / :func:`combinational_loops` — cycle checks
  restricted to combinational cells (flip-flops break cycles);
* :func:`transitive_fanin` / :func:`transitive_fanout` — reachability sets
  used both by the randomizer (fast loop pre-check) and by the attack's
  loop-avoidance hint;
* :func:`topological_gate_order` — evaluation order for simulation and STA.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import networkx as nx

from repro.netlist.netlist import Netlist

#: Prefix for pseudo-nodes representing primary inputs/outputs in graph views.
PI_PREFIX = "PI::"
PO_PREFIX = "PO::"


def netlist_to_digraph(netlist: Netlist, include_ports: bool = False) -> nx.DiGraph:
    """Build a gate-level directed graph of ``netlist``.

    Nodes are gate names; an edge ``u → v`` exists when an output net of gate
    ``u`` feeds an input pin of gate ``v``.  Sequential cells are included as
    nodes but — by construction of the callers — their edges are treated as
    cut points when checking for *combinational* loops (see
    :func:`combinational_loops`).

    Args:
        netlist: The netlist to convert.
        include_ports: When True, primary inputs/outputs are added as pseudo
            nodes named ``PI::<name>`` / ``PO::<name>`` with corresponding
            edges, which is convenient for plotting and path queries.
    """
    graph = nx.DiGraph()
    for gate_name, gate in netlist.gates.items():
        graph.add_node(gate_name, cell=gate.cell.name, sequential=gate.cell.is_sequential)
    if include_ports:
        for pi in netlist.primary_inputs:
            graph.add_node(PI_PREFIX + pi, cell="__PI__", sequential=False)
        for po in netlist.primary_outputs:
            graph.add_node(PO_PREFIX + po, cell="__PO__", sequential=False)

    for net in netlist.nets.values():
        driver = net.driver
        if driver is None:
            if not net.is_primary_input or not include_ports:
                driver_node = None
            else:
                driver_node = PI_PREFIX + net.name
        else:
            driver_node = driver[0]
        if driver_node is None and not include_ports:
            # Net driven by a primary input (or floating): no gate-to-gate edge.
            continue
        for sink_gate, _pin in net.sinks:
            if driver_node is not None:
                graph.add_edge(driver_node, sink_gate, net=net.name)
        if include_ports:
            for po in net.primary_outputs:
                if driver_node is not None:
                    graph.add_edge(driver_node, PO_PREFIX + po, net=net.name)
    return graph


def _combinational_subgraph(netlist: Netlist, graph: Optional[nx.DiGraph] = None) -> nx.DiGraph:
    """Return the gate graph with sequential cells removed (cycle cut points)."""
    if graph is None:
        graph = netlist_to_digraph(netlist)
    sequential = [n for n, data in graph.nodes(data=True) if data.get("sequential")]
    if not sequential:
        return graph
    sub = graph.copy()
    sub.remove_nodes_from(sequential)
    return sub


def combinational_loops(netlist: Netlist) -> List[List[str]]:
    """Return a list of combinational cycles (each a list of gate names).

    Sequential cells legitimately close feedback paths and are excluded.  An
    empty list means the combinational portion of the design is acyclic.
    """
    sub = _combinational_subgraph(netlist)
    try:
        cycle = nx.find_cycle(sub, orientation="original")
    except nx.NetworkXNoCycle:
        return []
    # Report the single cycle found; enumerating all simple cycles can blow up
    # and callers only need to know *whether* and *where* a loop exists.
    return [[edge[0] for edge in cycle]]


def has_combinational_loop(netlist: Netlist) -> bool:
    """True when the combinational portion of ``netlist`` contains a cycle."""
    sub = _combinational_subgraph(netlist)
    return not nx.is_directed_acyclic_graph(sub)


def transitive_fanout(netlist: Netlist, gate_name: str,
                      graph: Optional[nx.DiGraph] = None) -> Set[str]:
    """Return all gates reachable downstream of ``gate_name`` (exclusive)."""
    if graph is None:
        graph = netlist_to_digraph(netlist)
    if gate_name not in graph:
        return set()
    return set(nx.descendants(graph, gate_name))


def transitive_fanin(netlist: Netlist, gate_name: str,
                     graph: Optional[nx.DiGraph] = None) -> Set[str]:
    """Return all gates in the upstream cone of ``gate_name`` (exclusive)."""
    if graph is None:
        graph = netlist_to_digraph(netlist)
    if gate_name not in graph:
        return set()
    return set(nx.ancestors(graph, gate_name))


def topological_gate_order(netlist: Netlist) -> List[str]:
    """Return gate names in a valid combinational evaluation order.

    Sequential cells are placed first (their outputs act as pseudo-primary
    inputs for the combinational logic they feed).  Raises
    :class:`networkx.NetworkXUnfeasible` if the combinational logic is cyclic.
    """
    graph = netlist_to_digraph(netlist)
    sequential = [n for n, data in graph.nodes(data=True) if data.get("sequential")]
    comb = graph.copy()
    comb.remove_nodes_from(sequential)
    order = list(nx.topological_sort(comb))
    return sequential + order


def pseudo_topological_order(netlist: Netlist) -> List[str]:
    """Evaluation order that tolerates combinational loops.

    Attack-recovered netlists can accidentally contain combinational cycles.
    To still be able to simulate them (and measure their OER/HD), cycles are
    broken greedily: gates are peeled off in Kahn order and, when only cyclic
    gates remain, the gate with the fewest unresolved fan-ins is emitted next
    (its unresolved inputs will read as the simulator's default value).
    """
    graph = netlist_to_digraph(netlist)
    sequential = [n for n, data in graph.nodes(data=True) if data.get("sequential")]
    comb = graph.copy()
    comb.remove_nodes_from(sequential)
    in_degree = dict(comb.in_degree())
    ready = sorted((n for n, d in in_degree.items() if d == 0), reverse=True)
    scheduled = set(ready)
    order: List[str] = []
    while len(order) < comb.number_of_nodes():
        if not ready:
            # Break a cycle: pick the unscheduled gate with the fewest open fanins.
            victim = min(
                (n for n in in_degree if n not in scheduled),
                key=lambda n: (in_degree[n], n),
            )
            scheduled.add(victim)
            ready.append(victim)
        gate = ready.pop()
        order.append(gate)
        for succ in comb.successors(gate):
            if succ in scheduled:
                continue
            in_degree[succ] -= 1
            if in_degree[succ] <= 0:
                scheduled.add(succ)
                ready.append(succ)
    return sequential + order


def logic_depth(netlist: Netlist) -> int:
    """Return the maximum combinational depth (number of gates on the longest path)."""
    sub = _combinational_subgraph(netlist)
    if sub.number_of_nodes() == 0:
        return 0
    return nx.dag_longest_path_length(sub) + 1


def gate_levels(netlist: Netlist) -> Dict[str, int]:
    """Return the topological level (longest distance from any input) per gate."""
    sub = _combinational_subgraph(netlist)
    levels: Dict[str, int] = {}
    for gate in nx.topological_sort(sub):
        preds = list(sub.predecessors(gate))
        levels[gate] = 0 if not preds else 1 + max(levels[p] for p in preds)
    # Sequential gates sit at level 0 (treated as pseudo inputs).
    for gate_name, gate in netlist.gates.items():
        if gate.cell.is_sequential:
            levels.setdefault(gate_name, 0)
    return levels


def would_create_loop(netlist: Netlist, driver_gate: Optional[str],
                      sink_gate: str, graph: Optional[nx.DiGraph] = None) -> bool:
    """Check whether connecting ``driver_gate`` output to an input of ``sink_gate``
    would create a combinational loop.

    ``driver_gate`` may be ``None`` (primary-input driver), which can never
    create a loop.  The check is a reachability query: a loop appears iff
    ``driver_gate`` is reachable *from* ``sink_gate``, or they are the same
    combinational gate.
    """
    if driver_gate is None:
        return False
    if driver_gate == sink_gate:
        return not netlist.gates[sink_gate].cell.is_sequential
    if netlist.gates[driver_gate].cell.is_sequential:
        return False
    if netlist.gates[sink_gate].cell.is_sequential:
        return False
    if graph is None:
        graph = _combinational_subgraph(netlist)
    if sink_gate not in graph or driver_gate not in graph:
        return False
    return nx.has_path(graph, sink_gate, driver_gate)
