"""Gate-level netlist substrate.

This package provides everything the protection scheme and the attacks need
from a logic-design point of view:

* :mod:`repro.netlist.cells` — a standard-cell library modelled on the
  Nangate FreePDK45 Open Cell Library (area, pin capacitance, drive
  resistance, intrinsic delay, leakage) plus the paper's custom *correction*
  and *naive-lifting* cells;
* :mod:`repro.netlist.netlist` — the :class:`Netlist` / :class:`Gate` /
  :class:`Net` data model with driver/sink connectivity editing;
* :mod:`repro.netlist.graph` — DAG views, combinational-loop detection,
  topological ordering, reachability (used to keep randomization loop-free);
* :mod:`repro.netlist.simulate` — bit-parallel logic simulation used for the
  OER and Hamming-distance security metrics;
* :mod:`repro.netlist.bench_format` / :mod:`repro.netlist.verilog` — ISCAS
  ``.bench`` and structural-Verilog readers/writers;
* :mod:`repro.netlist.equivalence` — simulation-based functional-equivalence
  checking (stand-in for Synopsys Formality in the paper's flow).
"""

from repro.netlist.cells import Cell, CellLibrary, CellPin, nangate45_library
from repro.netlist.netlist import Gate, Net, Netlist, PortDirection
from repro.netlist.graph import (
    combinational_loops,
    has_combinational_loop,
    netlist_to_digraph,
    topological_gate_order,
    transitive_fanin,
    transitive_fanout,
)
from repro.netlist.simulate import SimulationResult, hamming_distance, output_error_rate, simulate
from repro.netlist.equivalence import check_equivalence
from repro.netlist.bench_format import parse_bench, write_bench
from repro.netlist.verilog import parse_structural_verilog, write_structural_verilog

__all__ = [
    "Cell",
    "CellLibrary",
    "CellPin",
    "nangate45_library",
    "Gate",
    "Net",
    "Netlist",
    "PortDirection",
    "combinational_loops",
    "has_combinational_loop",
    "netlist_to_digraph",
    "topological_gate_order",
    "transitive_fanin",
    "transitive_fanout",
    "SimulationResult",
    "hamming_distance",
    "output_error_rate",
    "simulate",
    "check_equivalence",
    "parse_bench",
    "write_bench",
    "parse_structural_verilog",
    "write_structural_verilog",
]
