"""Table 1 — distances between connected gates (superblue suite).

For every superblue benchmark the experiment reports mean / median / standard
deviation of the distances between truly connected gates, for the original,
naively lifted and proposed (protected) layouts.  The randomized nets are
measured, mirroring the paper's focus on the nets its scheme touches.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.metrics.distances import distance_stats
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 1."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 1: Distances between connected gates (microns)",
        columns=["Benchmark", "Layout", "Mean", "Median", "Std. Dev."],
    )
    for benchmark in config.superblue_benchmarks:
        result = protection_artifacts(benchmark, config)
        protected_nets = set(result.protected_layout.protected_nets)
        layouts = [
            ("Original", result.original_layout),
            ("Lifted", result.naive_lifted_layout),
            ("Proposed", result.protected_layout),
        ]
        for label, layout in layouts:
            if layout is None:
                continue
            stats = distance_stats(layout, protected_nets)
            table.add_row([benchmark, label, *stats.as_row()])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
