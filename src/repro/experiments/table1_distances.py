"""Table 1 — distances between connected gates (superblue suite).

For every superblue benchmark the experiment reports mean / median / standard
deviation of the distances between truly connected gates, for the original,
naively lifted and proposed (protected) layouts.  The randomized nets are
measured, mirroring the paper's focus on the nets its scheme touches.

The experiment is a thin scenario grid: one
:class:`~repro.api.spec.ScenarioSpec` per benchmark (scheme ``proposed``,
``distances`` metric over the three layout variants), executed by the shared
:class:`~repro.api.Workspace`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.utils.tables import Table

#: Layout-variant order and labels of the paper's table rows.
LAYOUT_LABELS = (("original", "Original"), ("lifted", "Lifted"), ("protected", "Proposed"))


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Table 1."""
    config = config if config is not None else ExperimentConfig()
    return [
        config.scenario(
            benchmark,
            layouts=("original", "lifted", "protected"),
            metrics=("distances",),
        )
        for benchmark in config.superblue_benchmarks
    ]


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 1."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 1: Distances between connected gates (microns)",
        columns=["Benchmark", "Layout", "Mean", "Median", "Std. Dev."],
    )
    for result in default_workspace().run_scenarios(scenarios(config)):
        for variant, label in LAYOUT_LABELS:
            stats = result.metric("distances", variant)
            table.add_row([
                result.benchmark, label,
                round(stats["mean"], 2), round(stats["median"], 2),
                round(stats["std_dev"], 2),
            ])
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
