"""Sec. 5.2 headline numbers: 0 % CCR, ≈100 % OER, ≈40 % HD on ISCAS-85.

The experiment averages the proposed scheme's security metrics over the
ISCAS-85 suite (splits M3–M5), plus the original-layout baseline, and reports
both next to the paper's quoted averages.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.experiments.paper_data import PAPER_HEADLINE, PAPER_PRIOR_ART_AVERAGE_CCR
from repro.experiments.table4_placement_schemes import attack_layout_average
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate the headline comparison (measured vs paper)."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Headline: average security metrics over ISCAS-85 (splits M3-M5)",
        columns=["Layout", "CCR (%)", "OER (%)", "HD (%)",
                 "Paper CCR (%)", "Paper OER (%)", "Paper HD (%)"],
    )
    original_totals: Dict[str, float] = {"ccr": 0.0, "oer": 0.0, "hd": 0.0}
    proposed_totals: Dict[str, float] = {"ccr": 0.0, "oer": 0.0, "hd": 0.0}
    count = 0
    for benchmark in config.iscas_benchmarks:
        result = protection_artifacts(benchmark, config)
        original = attack_layout_average(
            result.original_layout, config.iscas_split_layers, config.num_patterns,
            seed=config.seed,
        )
        proposed = attack_layout_average(
            result.protected_layout, config.iscas_split_layers, config.num_patterns,
            restrict_to_protected=True, seed=config.seed,
        )
        for key in original_totals:
            original_totals[key] += original[key]
            proposed_totals[key] += proposed[key]
        count += 1
    if count:
        for key in original_totals:
            original_totals[key] /= count
            proposed_totals[key] /= count
    table.add_row([
        "Original",
        round(original_totals["ccr"], 1), round(original_totals["oer"], 1),
        round(original_totals["hd"], 1),
        PAPER_PRIOR_ART_AVERAGE_CCR["original"], 65.3, 7.1,
    ])
    table.add_row([
        "Proposed",
        round(proposed_totals["ccr"], 1), round(proposed_totals["oer"], 1),
        round(proposed_totals["hd"], 1),
        PAPER_HEADLINE["ccr"], PAPER_HEADLINE["oer"], PAPER_HEADLINE["hd"],
    ])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
