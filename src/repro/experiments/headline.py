"""Sec. 5.2 headline numbers: 0 % CCR, ≈100 % OER, ≈40 % HD on ISCAS-85.

The experiment averages the proposed scheme's security metrics over the
ISCAS-85 suite (splits M3–M5), plus the original-layout baseline, and reports
both next to the paper's quoted averages.

One scenario cell per benchmark: the proposed build, attacked on its
``original`` and ``protected`` variants with the network-flow attack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.experiments.paper_data import PAPER_HEADLINE, PAPER_PRIOR_ART_AVERAGE_CCR
from repro.utils.tables import Table


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind the headline numbers."""
    config = config if config is not None else ExperimentConfig()
    return [
        config.scenario(
            benchmark,
            layouts=("original", "protected"),
            split_layers=tuple(config.iscas_split_layers),
            attacks=("network_flow",),
            metrics=("security",),
        )
        for benchmark in config.iscas_benchmarks
    ]


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate the headline comparison (measured vs paper)."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Headline: average security metrics over ISCAS-85 (splits M3-M5)",
        columns=["Layout", "CCR (%)", "OER (%)", "HD (%)",
                 "Paper CCR (%)", "Paper OER (%)", "Paper HD (%)"],
    )
    original_totals: Dict[str, float] = {"ccr": 0.0, "oer": 0.0, "hd": 0.0}
    proposed_totals: Dict[str, float] = {"ccr": 0.0, "oer": 0.0, "hd": 0.0}
    count = 0
    for result in default_workspace().run_scenarios(scenarios(config)):
        original = result.security_mean(layout="original")
        proposed = result.security_mean(layout="protected")
        for key in original_totals:
            original_totals[key] += original[key]
            proposed_totals[key] += proposed[key]
        count += 1
    if count:
        for key in original_totals:
            original_totals[key] /= count
            proposed_totals[key] /= count
    table.add_row([
        "Original",
        round(original_totals["ccr"], 1), round(original_totals["oer"], 1),
        round(original_totals["hd"], 1),
        PAPER_PRIOR_ART_AVERAGE_CCR["original"], 65.3, 7.1,
    ])
    table.add_row([
        "Proposed",
        round(proposed_totals["ccr"], 1), round(proposed_totals["oer"], 1),
        round(proposed_totals["hd"], 1),
        PAPER_HEADLINE["ccr"], PAPER_HEADLINE["oer"], PAPER_HEADLINE["hd"],
    ])
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
