"""Figure 5 — contribution of the metal layers to the wirelength of the
randomized nets (superblue suite).

The paper's bar chart shows that original layouts keep most of the affected
nets' wiring in the lower metal layers, naive lifting spreads it out, and the
proposed scheme holds the majority in the BEOL (above the split layer).  The
experiment reports the per-layer percentage shares plus the cumulative share
above the split layer.

One :class:`~repro.api.spec.ScenarioSpec` per benchmark (the
``wirelength_layers`` metric with the superblue split layer) over the three
layout variants of the proposed build.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.experiments.table1_distances import LAYOUT_LABELS
from repro.netlist.cells import NUM_METAL_LAYERS
from repro.utils.tables import Table


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Fig. 5."""
    config = config if config is not None else ExperimentConfig()
    metric = {
        "name": "wirelength_layers",
        "params": {"split_layer": config.superblue_split_layer},
    }
    return [
        config.scenario(
            benchmark,
            layouts=("original", "lifted", "protected"),
            metrics=(metric,),
        )
        for benchmark in config.superblue_benchmarks
    ]


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Fig. 5 as a per-layer share table."""
    config = config if config is not None else ExperimentConfig()
    layer_columns = [f"M{layer}" for layer in range(1, NUM_METAL_LAYERS + 1)]
    table = Table(
        title="Figure 5: wirelength share per metal layer for randomized nets (%)",
        columns=["Benchmark", "Layout", *layer_columns, "Above split"],
    )
    for result in default_workspace().run_scenarios(scenarios(config)):
        for variant, label in LAYOUT_LABELS:
            value = result.metric("wirelength_layers", variant)
            shares = value["shares"]
            table.add_row([
                result.benchmark, label,
                *[round(shares.get(layer, 0.0), 1) for layer in range(1, NUM_METAL_LAYERS + 1)],
                round(value["above_split"], 1),
            ])
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
