"""Figure 5 — contribution of the metal layers to the wirelength of the
randomized nets (superblue suite).

The paper's bar chart shows that original layouts keep most of the affected
nets' wiring in the lower metal layers, naive lifting spreads it out, and the
proposed scheme holds the majority in the BEOL (above the split layer).  The
experiment reports the per-layer percentage shares plus the cumulative share
above the split layer.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.metrics.wirelength import beol_wirelength_fraction, wirelength_share_by_layer
from repro.netlist.cells import NUM_METAL_LAYERS
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Fig. 5 as a per-layer share table."""
    config = config if config is not None else ExperimentConfig()
    layer_columns = [f"M{layer}" for layer in range(1, NUM_METAL_LAYERS + 1)]
    table = Table(
        title="Figure 5: wirelength share per metal layer for randomized nets (%)",
        columns=["Benchmark", "Layout", *layer_columns, "Above split"],
    )
    split = config.superblue_split_layer
    for benchmark in config.superblue_benchmarks:
        result = protection_artifacts(benchmark, config)
        nets = set(result.protected_layout.protected_nets)
        layouts = [
            ("Original", result.original_layout),
            ("Lifted", result.naive_lifted_layout),
            ("Proposed", result.protected_layout),
        ]
        for label, layout in layouts:
            if layout is None:
                continue
            shares = wirelength_share_by_layer(layout, nets)
            above = beol_wirelength_fraction(layout, split, nets)
            table.add_row([
                benchmark, label,
                *[round(shares.get(layer, 0.0), 1) for layer in range(1, NUM_METAL_LAYERS + 1)],
                round(above, 1),
            ])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
