"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run(config) -> Table`` (or a small list of tables)
function that regenerates the corresponding rows of the paper's evaluation
with this reproduction's substrates.  ``repro.experiments.runner`` executes
all of them and prints the results; the paper's own quoted numbers are kept
in :mod:`repro.experiments.paper_data` so reports can show both side by side.

| Module | Paper content |
| --- | --- |
| ``table1_distances`` | Table 1 — distances between connected gates |
| ``table2_vias`` | Table 2 — additional vias per layer pair |
| ``table3_crouting`` | Table 3 — crouting vpins / candidate-list sizes |
| ``table4_placement_schemes`` | Table 4 — CCR/OER/HD vs placement-perturbation defenses |
| ``table5_routing_schemes`` | Table 5 — CCR/OER/HD vs routing-perturbation defenses |
| ``table6_magana`` | Table 6 — ΔV67/ΔV78 vs routing blockages |
| ``figure4_distance_distributions`` | Fig. 4 — distance distributions (superblue18) |
| ``figure5_wirelength_layers`` | Fig. 5 — per-layer wirelength shares |
| ``figure6_ppa`` | Fig. 6 — PPA overheads vs Sengupta et al. |
| ``headline`` | Sec. 5.2 headline numbers (0 % CCR, ≈100 % OER, ≈40 % HD) |
Every experiment module also exposes a ``scenarios(config)`` function
returning the declarative :class:`~repro.api.spec.ScenarioSpec` grid its
table is assembled from — the table modules are thin formatters over
``repro.api`` scenario results.
"""

from repro.experiments.common import ExperimentConfig, protection_artifacts

__all__ = ["ExperimentConfig", "protection_artifacts"]
