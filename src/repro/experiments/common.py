"""Shared configuration and cached artefact construction for experiments.

The protection flow is by far the most expensive step of every experiment,
so its artefacts are cached process-wide and can be **prewarmed in
parallel**: :func:`prewarm_artifacts` farms the independent benchmark runs
out to a :class:`concurrent.futures.ProcessPoolExecutor` (every artefact —
netlists, layouts, randomization records — pickles cleanly) and publishes
the results into the shared cache under a lock, so later experiment code
only ever hits the cache.  Environments without working multiprocessing
(sandboxes, restricted CI) fall back to serial construction transparently.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.registry import get_benchmark
from repro.circuits.superblue import SUPERBLUE_PROFILES
from repro.core.flow import ProtectionConfig, ProtectionResult, protect


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment.

    The defaults keep a full run of all tables/figures in the range of a few
    minutes on a laptop; raise ``superblue_scale`` (towards the paper's full
    designs) for higher-fidelity numbers at the cost of runtime.
    """

    #: ISCAS-85 benchmarks (Tables 4, 5, Fig. 6).
    iscas_benchmarks: Tuple[str, ...] = (
        "c432", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552",
    )
    #: superblue benchmarks (Tables 1, 2, 3, 6, Figs. 4, 5).
    superblue_benchmarks: Tuple[str, ...] = (
        "superblue1", "superblue5", "superblue10", "superblue12", "superblue18",
    )
    #: Down-scaling factor for the superblue designs.
    superblue_scale: float = 0.005
    #: Split layers averaged for the ISCAS security tables (paper: M3, M4, M5).
    iscas_split_layers: Tuple[int, ...] = (3, 4, 5)
    #: Lift layer for ISCAS-85 (paper: M6) and superblue (paper: M8).
    iscas_lift_layer: int = 6
    superblue_lift_layer: int = 8
    #: Split layer used for the superblue routing-centric evaluation.
    superblue_split_layer: int = 6
    #: PPA budgets (paper: 20 % ISCAS-85, 5 % superblue).
    iscas_ppa_budget_percent: float = 20.0
    superblue_ppa_budget_percent: float = 5.0
    #: Randomization intensities tried by the budget loop.
    iscas_swap_fractions: Tuple[float, ...] = (0.05, 0.10)
    superblue_swap_fractions: Tuple[float, ...] = (0.02,)
    #: Patterns for OER/HD estimates.  The vectorized simulation engine makes
    #: large pattern blocks cheap; 4096 keeps the security metrics' sampling
    #: error well below the table resolution (see README).
    num_patterns: int = 4096
    #: Master seed.
    seed: int = 1

    def is_superblue(self, benchmark: str) -> bool:
        return benchmark in SUPERBLUE_PROFILES

    def protection_config(self, benchmark: str) -> ProtectionConfig:
        """Per-benchmark :class:`ProtectionConfig` following the paper's setup."""
        if self.is_superblue(benchmark):
            return ProtectionConfig(
                lift_layer=self.superblue_lift_layer,
                utilization=SUPERBLUE_PROFILES[benchmark].utilization_percent / 100.0,
                ppa_budget_percent=self.superblue_ppa_budget_percent,
                swap_fraction_steps=self.superblue_swap_fractions,
                max_swaps=600,
                oer_patterns=min(self.num_patterns, 256),
                seed=self.seed,
            )
        return ProtectionConfig(
            lift_layer=self.iscas_lift_layer,
            utilization=0.70,
            ppa_budget_percent=self.iscas_ppa_budget_percent,
            swap_fraction_steps=self.iscas_swap_fractions,
            max_swaps=800,
            oer_patterns=self.num_patterns,
            seed=self.seed,
        )


#: Process-wide cache so that e.g. Table 1, Table 2 and Fig. 5 reuse the same
#: superblue protection runs instead of re-running the flow per experiment.
#: Guarded by :data:`_CACHE_LOCK` so prewarm workers' results can be
#: published from multiple threads safely.
_ARTIFACT_CACHE: Dict[Tuple[str, float, int], ProtectionResult] = {}
_CACHE_LOCK = threading.Lock()


def _artifact_key(benchmark: str, config: ExperimentConfig) -> Tuple[str, float, int]:
    scale = config.superblue_scale if config.is_superblue(benchmark) else 1.0
    return (benchmark, scale, config.seed)


def _build_artifact(benchmark: str, config: ExperimentConfig) -> ProtectionResult:
    """Run the protection flow for one benchmark (no cache interaction).

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` workers
    can pickle a reference to it.
    """
    scale = config.superblue_scale if config.is_superblue(benchmark) else 1.0
    netlist = get_benchmark(benchmark, seed=config.seed,
                            scale=scale if scale != 1.0 else None)
    return protect(netlist, config.protection_config(benchmark))


def protection_artifacts(benchmark: str, config: Optional[ExperimentConfig] = None,
                         use_cache: bool = True) -> ProtectionResult:
    """Return (and cache) the protection-flow artefacts for ``benchmark``.

    The returned :class:`~repro.core.flow.ProtectionResult` bundles the
    original, naive-lifted and protected layouts plus the randomization
    bookkeeping — everything the individual experiments need.
    """
    config = config if config is not None else ExperimentConfig()
    key = _artifact_key(benchmark, config)
    if use_cache:
        with _CACHE_LOCK:
            if key in _ARTIFACT_CACHE:
                return _ARTIFACT_CACHE[key]
    result = _build_artifact(benchmark, config)
    if use_cache:
        with _CACHE_LOCK:
            result = _ARTIFACT_CACHE.setdefault(key, result)
    return result


def default_prewarm_jobs() -> int:
    """Worker count used when ``prewarm_artifacts(jobs=None)``."""
    return max(1, min(os.cpu_count() or 1, 8))


def prewarm_artifacts(benchmarks: Iterable[str],
                      config: Optional[ExperimentConfig] = None,
                      jobs: Optional[int] = None) -> List[str]:
    """Build the protection artefacts of ``benchmarks`` in parallel.

    Independent benchmarks are dispatched to a process pool (``jobs``
    workers, default :func:`default_prewarm_jobs`) and the finished
    :class:`ProtectionResult` objects are published into the shared artefact
    cache.  Already-cached benchmarks are skipped.  When multiprocessing is
    unavailable — or for a single missing benchmark — construction happens
    serially in-process.

    Returns the list of benchmark names that were actually built.
    """
    config = config if config is not None else ExperimentConfig()
    ordered: List[str] = []
    seen = set()
    for benchmark in benchmarks:
        if benchmark not in seen:
            seen.add(benchmark)
            ordered.append(benchmark)
    with _CACHE_LOCK:
        missing = [b for b in ordered if _artifact_key(b, config) not in _ARTIFACT_CACHE]
    if not missing:
        return []
    jobs = jobs if jobs is not None else default_prewarm_jobs()
    jobs = max(1, min(jobs, len(missing)))

    executor: Optional[concurrent.futures.ProcessPoolExecutor] = None
    if jobs > 1:
        try:
            executor = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
        except (OSError, PermissionError):
            # Sandboxed/CI environments may forbid subprocesses or the
            # semaphores they need; degrade to serial construction.
            executor = None
    if executor is not None:
        worker_error: Optional[BaseException] = None
        try:
            with executor:
                futures = {
                    executor.submit(_build_artifact, benchmark, config): benchmark
                    for benchmark in missing
                }
                for future in concurrent.futures.as_completed(futures):
                    benchmark = futures[future]
                    try:
                        result = future.result()
                    except concurrent.futures.process.BrokenProcessPool:
                        raise
                    except Exception as error:
                        # A genuine build failure: remember it, but keep
                        # publishing the sibling results so they are not
                        # rebuilt if the caller retries.
                        if worker_error is None:
                            worker_error = error
                        continue
                    with _CACHE_LOCK:
                        _ARTIFACT_CACHE.setdefault(_artifact_key(benchmark, config), result)
            if worker_error is not None:
                raise worker_error
            return missing
        except concurrent.futures.process.BrokenProcessPool:
            # The environment killed the pool mid-flight (e.g. forbidden
            # fork); anything already published stays cached, the rest is
            # built serially below.
            pass

    for benchmark in missing:
        protection_artifacts(benchmark, config)
    return missing


def clear_artifact_cache() -> None:
    """Drop every cached protection run (used by tests)."""
    with _CACHE_LOCK:
        _ARTIFACT_CACHE.clear()
