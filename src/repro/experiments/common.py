"""Shared configuration and artefact access for the experiment harness.

The artefact cache now lives in the :class:`repro.api.Workspace` (see
``repro/api/workspace.py``): builds are keyed by the full canonical build
hash of their scenario spec, so every :class:`ProtectionConfig` field is part
of the key — the historical module-global cache keyed only on
``(benchmark, scale, seed)`` and silently served stale artefacts across
configs that differed in e.g. ``iscas_lift_layer``.

Everything exported here (``protection_artifacts``, ``prewarm_artifacts``,
``clear_artifact_cache``) keeps its historical signature and delegates to the
process-wide default workspace, so legacy call sites keep working unchanged.
New code should talk to the workspace / scenario API directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.api.registry import params_to_dict
from repro.api.schemes import ProposedParams
from repro.api.spec import AttackSpec, MetricSpec, ScenarioSpec
from repro.api.workspace import default_jobs, default_workspace
from repro.circuits.superblue import SUPERBLUE_PROFILES
from repro.core.flow import ProtectionConfig, ProtectionResult


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment.

    The defaults keep a full run of all tables/figures in the range of a few
    minutes on a laptop; raise ``superblue_scale`` (towards the paper's full
    designs) for higher-fidelity numbers at the cost of runtime.
    """

    #: ISCAS-85 benchmarks (Tables 4, 5, Fig. 6).
    iscas_benchmarks: Tuple[str, ...] = (
        "c432", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552",
    )
    #: superblue benchmarks (Tables 1, 2, 3, 6, Figs. 4, 5).
    superblue_benchmarks: Tuple[str, ...] = (
        "superblue1", "superblue5", "superblue10", "superblue12", "superblue18",
    )
    #: Down-scaling factor for the superblue designs.
    superblue_scale: float = 0.005
    #: Split layers averaged for the ISCAS security tables (paper: M3, M4, M5).
    iscas_split_layers: Tuple[int, ...] = (3, 4, 5)
    #: Lift layer for ISCAS-85 (paper: M6) and superblue (paper: M8).
    iscas_lift_layer: int = 6
    superblue_lift_layer: int = 8
    #: Split layer used for the superblue routing-centric evaluation.
    superblue_split_layer: int = 6
    #: PPA budgets (paper: 20 % ISCAS-85, 5 % superblue).
    iscas_ppa_budget_percent: float = 20.0
    superblue_ppa_budget_percent: float = 5.0
    #: Randomization intensities tried by the budget loop.
    iscas_swap_fractions: Tuple[float, ...] = (0.05, 0.10)
    superblue_swap_fractions: Tuple[float, ...] = (0.02,)
    #: Patterns for OER/HD estimates.  The vectorized simulation engine makes
    #: large pattern blocks cheap; 4096 keeps the security metrics' sampling
    #: error well below the table resolution (see README).
    num_patterns: int = 4096
    #: Master seed.
    seed: int = 1

    def is_superblue(self, benchmark: str) -> bool:
        return benchmark in SUPERBLUE_PROFILES

    def protection_config(self, benchmark: str) -> ProtectionConfig:
        """Per-benchmark :class:`ProtectionConfig` following the paper's setup."""
        if self.is_superblue(benchmark):
            return ProtectionConfig(
                lift_layer=self.superblue_lift_layer,
                utilization=SUPERBLUE_PROFILES[benchmark].utilization_percent / 100.0,
                ppa_budget_percent=self.superblue_ppa_budget_percent,
                swap_fraction_steps=self.superblue_swap_fractions,
                max_swaps=600,
                oer_patterns=min(self.num_patterns, 256),
                seed=self.seed,
            )
        return ProtectionConfig(
            lift_layer=self.iscas_lift_layer,
            utilization=0.70,
            ppa_budget_percent=self.iscas_ppa_budget_percent,
            swap_fraction_steps=self.iscas_swap_fractions,
            max_swaps=800,
            oer_patterns=self.num_patterns,
            seed=self.seed,
        )

    def benchmark_scale(self, benchmark: str) -> Optional[float]:
        """The scale passed to the benchmark generator (None for ISCAS)."""
        if self.is_superblue(benchmark):
            return self.superblue_scale if self.superblue_scale != 1.0 else None
        return None

    def split_layers(self, benchmark: str) -> Tuple[int, ...]:
        if self.is_superblue(benchmark):
            return (self.superblue_split_layer,)
        return tuple(self.iscas_split_layers)

    # -- scenario-spec construction ---------------------------------------

    def proposed_scheme_params(self, benchmark: str) -> Dict[str, Any]:
        """The ``proposed`` scheme parameters for ``benchmark`` as plain data."""
        config = self.protection_config(benchmark)
        return params_to_dict(ProposedParams.from_protection_config(config))

    def scenario(self, benchmark: str, *, scheme: str = "proposed",
                 scheme_params: Optional[Mapping[str, Any]] = None,
                 layouts: Tuple[str, ...] = ("protected",),
                 split_layers: Optional[Tuple[int, ...]] = None,
                 attacks: Iterable[Any] = (),
                 metrics: Iterable[Any] = ()) -> ScenarioSpec:
        """Build one :class:`ScenarioSpec` following this config's conventions.

        The ``proposed`` scheme's parameters default to the per-benchmark
        :meth:`protection_config`; other schemes default to their registered
        parameter defaults.
        """
        if scheme_params is None and scheme == "proposed":
            scheme_params = self.proposed_scheme_params(benchmark)
        return ScenarioSpec(
            benchmark=benchmark,
            scheme=scheme,
            scheme_params=scheme_params or {},
            scale=self.benchmark_scale(benchmark),
            layouts=layouts,
            split_layers=(
                split_layers if split_layers is not None
                else self.split_layers(benchmark)
            ),
            attacks=tuple(AttackSpec.coerce(a) for a in attacks),
            metrics=tuple(MetricSpec.coerce(m) for m in metrics),
            num_patterns=self.num_patterns,
            seed=self.seed,
        )

    # -- serialization (CLI / JSON-driven runs) ----------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        return {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in data.items()
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        fields = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - set(fields))
        if unknown:
            raise TypeError(
                f"unknown ExperimentConfig field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(fields))}"
            )
        kwargs = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.items()
        }
        return cls(**kwargs)


def _proposed_spec(benchmark: str, config: ExperimentConfig) -> ScenarioSpec:
    return config.scenario(benchmark)


# ---------------------------------------------------------------------------
# Monte-Carlo seed sweeps
# ---------------------------------------------------------------------------


def make_experiment_sweep(scenarios_fn):
    """The standard ``sweep(seeds, config, jobs)`` entry of an experiment module.

    Every experiment module exposes ``sweep = make_experiment_sweep(scenarios)``
    — a Monte-Carlo sweep of its scenario grid returning one aggregated
    :class:`~repro.api.SweepResult` (per-seed values plus mean/std/CI per
    metric leaf) per scenario; render with :func:`sweep_report_table`.
    """
    def sweep(seeds: Any, config: Optional[ExperimentConfig] = None,
              jobs: Optional[int] = None,
              on_error: Optional[str] = None) -> List["SweepResult"]:
        return run_scenario_sweep(
            scenarios_fn(config), seeds, jobs=jobs, on_error=on_error
        )

    sweep.__doc__ = (
        "Monte-Carlo sweep of this experiment's scenario grid across "
        "``seeds``.\n\n    See "
        ":func:`repro.experiments.common.make_experiment_sweep`."
    )
    return sweep


def run_scenario_sweep(specs: Iterable[ScenarioSpec], seeds: Any,
                       jobs: Optional[int] = None,
                       on_error: Optional[str] = None) -> List["SweepResult"]:
    """Run a scenario grid as a Monte-Carlo sweep over ``seeds``.

    Every spec is re-declared with the given seed set (a list of ints or a
    ``{"start", "count"}`` range) and executed through
    :meth:`repro.api.Workspace.run_sweeps`, which batches the per-seed builds
    through the prewarm process pool.  Returns one aggregated
    :class:`~repro.api.SweepResult` per input spec.

    ``on_error="skip"`` drops failed seeds into ``SweepResult.failures``
    and aggregates the survivors (``None`` keeps the workspace default).
    """
    swept = [spec.with_seeds(seeds) for spec in specs]
    return default_workspace().run_sweeps(swept, jobs=jobs, on_error=on_error)


def sweep_report_table(sweeps: List["SweepResult"], title: str) -> "Table":
    """Render sweep aggregates as a plain-text table (per-seed + mean/std/CI).

    One row per metric leaf: layout/compare metrics are labelled
    ``metric[layout].leaf``, attack-scope metrics
    ``metric[layout@M<split>:attack].leaf``.

    Partial sweeps (``on_error="skip"`` dropped seeds) are surfaced
    honestly: the Seeds column shows ``surviving/requested`` and every
    dropped seed gets a ``failure[seed=N]`` row naming the error.
    """
    from repro.api.workspace import flatten_sweep_aggregate
    from repro.utils.tables import Table

    table = Table(
        title=title,
        columns=["Benchmark", "Scheme", "Seeds", "Quantity",
                 "Mean", "Std", "CI95", "Per-seed"],
    )

    def seeds_cell(sweep) -> Any:
        if not sweep.failures:
            return len(sweep.seeds)
        return f"{len(sweep.seeds)}/{len(sweep.seeds) + len(sweep.failures)}"

    def add_rows(sweep, label_prefix: str, aggregate: Any) -> None:
        for leaf, stat in flatten_sweep_aggregate(aggregate, label_prefix):
            per_seed = stat.get("per_seed", [])
            if "mean" not in stat:  # non-numeric leaf: report values only
                table.add_row([
                    sweep.benchmark, sweep.scheme, seeds_cell(sweep), leaf,
                    None, None, None,
                    " ".join(str(v) for v in per_seed),
                ])
                continue
            table.add_row([
                sweep.benchmark, sweep.scheme, seeds_cell(sweep), leaf,
                round(stat["mean"], 4), round(stat["std"], 4),
                round(stat["ci95"], 4),
                " ".join(format(float(v), ".4g") for v in per_seed),
            ])

    for sweep in sweeps:
        for metric_name, per_layout in sweep.layout_metrics.items():
            for layout, aggregate in per_layout.items():
                add_rows(sweep, f"{metric_name}[{layout}]", aggregate)
        for record in sweep.attack_records:
            for metric_name, aggregate in record.metrics.items():
                add_rows(
                    sweep,
                    f"{metric_name}[{record.layout}@M{record.split_layer}"
                    f":{record.attack}]",
                    aggregate,
                )
        for failure in sweep.failures:
            table.add_row([
                sweep.benchmark, sweep.scheme, seeds_cell(sweep),
                f"failure[seed={failure.seed}]",
                None, None, None,
                f"{failure.error_type} after {failure.attempts} attempt(s): "
                f"{failure.message}",
            ])
    return table


def protection_artifacts(benchmark: str, config: Optional[ExperimentConfig] = None,
                         use_cache: bool = True) -> ProtectionResult:
    """Return (and cache) the protection-flow artefacts for ``benchmark``.

    Legacy shim over :meth:`repro.api.Workspace.protection`; the cache key
    covers every build-relevant configuration field.
    """
    from repro.api.workspace import Workspace

    config = config if config is not None else ExperimentConfig()
    # use_cache=False runs the flow on a throwaway workspace so the shared
    # cache is neither read nor polluted.
    workspace = default_workspace() if use_cache else Workspace()
    return workspace.protection(
        benchmark, config.protection_config(benchmark),
        scale=config.benchmark_scale(benchmark),
    )


def default_prewarm_jobs() -> int:
    """Worker count used when ``prewarm_artifacts(jobs=None)``."""
    return default_jobs()


def prewarm_artifacts(benchmarks: Iterable[str],
                      config: Optional[ExperimentConfig] = None,
                      jobs: Optional[int] = None,
                      on_error: Optional[str] = None) -> List[str]:
    """Build the protection artefacts of ``benchmarks`` in parallel.

    Legacy shim over :meth:`repro.api.Workspace.prewarm` (which retries,
    respawns crashed pools and quarantines poison builds under the
    workspace's retry policy).  Returns the list of benchmark names that
    were successfully built (deduplicated, input order).
    """
    config = config if config is not None else ExperimentConfig()
    ordered: List[ScenarioSpec] = []
    seen = set()
    for benchmark in benchmarks:
        if benchmark not in seen:
            seen.add(benchmark)
            ordered.append(_proposed_spec(benchmark, config))
    built = default_workspace().prewarm(ordered, jobs=jobs, on_error=on_error)
    return [spec.benchmark for spec in built]


def clear_artifact_cache() -> None:
    """Drop every cached build from the default workspace (used by tests)."""
    default_workspace().clear()
