"""Shared configuration and cached artefact construction for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.circuits.registry import get_benchmark
from repro.circuits.superblue import SUPERBLUE_PROFILES
from repro.core.flow import ProtectionConfig, ProtectionResult, protect


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment.

    The defaults keep a full run of all tables/figures in the range of a few
    minutes on a laptop; raise ``superblue_scale`` (towards the paper's full
    designs) for higher-fidelity numbers at the cost of runtime.
    """

    #: ISCAS-85 benchmarks (Tables 4, 5, Fig. 6).
    iscas_benchmarks: Tuple[str, ...] = (
        "c432", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552",
    )
    #: superblue benchmarks (Tables 1, 2, 3, 6, Figs. 4, 5).
    superblue_benchmarks: Tuple[str, ...] = (
        "superblue1", "superblue5", "superblue10", "superblue12", "superblue18",
    )
    #: Down-scaling factor for the superblue designs.
    superblue_scale: float = 0.005
    #: Split layers averaged for the ISCAS security tables (paper: M3, M4, M5).
    iscas_split_layers: Tuple[int, ...] = (3, 4, 5)
    #: Lift layer for ISCAS-85 (paper: M6) and superblue (paper: M8).
    iscas_lift_layer: int = 6
    superblue_lift_layer: int = 8
    #: Split layer used for the superblue routing-centric evaluation.
    superblue_split_layer: int = 6
    #: PPA budgets (paper: 20 % ISCAS-85, 5 % superblue).
    iscas_ppa_budget_percent: float = 20.0
    superblue_ppa_budget_percent: float = 5.0
    #: Randomization intensities tried by the budget loop.
    iscas_swap_fractions: Tuple[float, ...] = (0.05, 0.10)
    superblue_swap_fractions: Tuple[float, ...] = (0.02,)
    #: Patterns for OER/HD estimates.
    num_patterns: int = 1024
    #: Master seed.
    seed: int = 1

    def is_superblue(self, benchmark: str) -> bool:
        return benchmark in SUPERBLUE_PROFILES

    def protection_config(self, benchmark: str) -> ProtectionConfig:
        """Per-benchmark :class:`ProtectionConfig` following the paper's setup."""
        if self.is_superblue(benchmark):
            return ProtectionConfig(
                lift_layer=self.superblue_lift_layer,
                utilization=SUPERBLUE_PROFILES[benchmark].utilization_percent / 100.0,
                ppa_budget_percent=self.superblue_ppa_budget_percent,
                swap_fraction_steps=self.superblue_swap_fractions,
                max_swaps=600,
                oer_patterns=min(self.num_patterns, 256),
                seed=self.seed,
            )
        return ProtectionConfig(
            lift_layer=self.iscas_lift_layer,
            utilization=0.70,
            ppa_budget_percent=self.iscas_ppa_budget_percent,
            swap_fraction_steps=self.iscas_swap_fractions,
            max_swaps=800,
            oer_patterns=self.num_patterns,
            seed=self.seed,
        )


#: Process-wide cache so that e.g. Table 1, Table 2 and Fig. 5 reuse the same
#: superblue protection runs instead of re-running the flow per experiment.
_ARTIFACT_CACHE: Dict[Tuple[str, float, int], ProtectionResult] = {}


def protection_artifacts(benchmark: str, config: Optional[ExperimentConfig] = None,
                         use_cache: bool = True) -> ProtectionResult:
    """Return (and cache) the protection-flow artefacts for ``benchmark``.

    The returned :class:`~repro.core.flow.ProtectionResult` bundles the
    original, naive-lifted and protected layouts plus the randomization
    bookkeeping — everything the individual experiments need.
    """
    config = config if config is not None else ExperimentConfig()
    scale = config.superblue_scale if config.is_superblue(benchmark) else 1.0
    key = (benchmark, scale, config.seed)
    if use_cache and key in _ARTIFACT_CACHE:
        return _ARTIFACT_CACHE[key]
    netlist = get_benchmark(benchmark, seed=config.seed, scale=scale if scale != 1.0 else None)
    result = protect(netlist, config.protection_config(benchmark))
    if use_cache:
        _ARTIFACT_CACHE[key] = result
    return result


def clear_artifact_cache() -> None:
    """Drop every cached protection run (used by tests)."""
    _ARTIFACT_CACHE.clear()
