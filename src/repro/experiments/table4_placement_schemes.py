"""Table 4 — comparison with placement-perturbation schemes (ISCAS-85).

For every ISCAS-85 benchmark the experiment runs the network-flow attack on

* the original (unprotected) layout,
* the selective placement perturbation of Wang et al. [5],
* the four layout-randomization strategies of Sengupta et al. [8]
  (CCR only, as in the paper), and
* the proposed scheme,

and reports CCR / OER / HD averaged over splits after M3, M4 and M5 — the
same averaging the paper applies because the prior art does not state its
split layer.

The experiment is a scenario grid over the defense registry: one
:class:`~repro.api.spec.ScenarioSpec` per (benchmark, scheme) cell with the
``network_flow`` attack and the ``security`` metric; the original row comes
from the ``original`` variant of the proposed scheme's own build (the same
layout the legacy path scored).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.registry import ATTACKS, METRICS
from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.layout.layout import Layout
from repro.sm.split import extract_feol
from repro.utils.tables import Table

#: Sengupta et al. strategies in the paper's column order.
RANDOMIZATION_STRATEGIES = ("random", "g_color", "g_type1", "g_type2")


def attack_layout_average(layout: Layout, split_layers: Sequence[int],
                          num_patterns: int, restrict_to_protected: bool = False,
                          seed: int = 0) -> Dict[str, float]:
    """Run the network-flow attack at several split layers and average CCR/OER/HD.

    Legacy helper kept for backward compatibility (examples, ad-hoc
    studies); new code should declare a :class:`ScenarioSpec` and use
    :meth:`~repro.api.workspace.ScenarioResult.security_mean` instead.
    """
    attack_entry = ATTACKS.get("network_flow")
    metric_entry = METRICS.get("security")
    from repro.api.metrics import MetricContext

    ccr: List[float] = []
    oer: List[float] = []
    hd: List[float] = []
    for split in split_layers:
        view = extract_feol(layout, split)
        outcome = attack_entry.fn(view, attack_entry.make_params())
        ctx = MetricContext(
            benchmark=layout.netlist.name, scheme="", layout_name="protected",
            num_patterns=num_patterns, seed=seed,
            restrict_to_protected=restrict_to_protected, split_layer=split,
        )
        report = metric_entry.fn(view, outcome, metric_entry.make_params(), ctx)
        ccr.append(report["ccr"])
        oer.append(report["oer"])
        hd.append(report["hd"])
    count = max(len(ccr), 1)
    return {
        "ccr": sum(ccr) / count,
        "oer": sum(oer) / count,
        "hd": sum(hd) / count,
    }


def _scheme_cells(config: ExperimentConfig, benchmark: str) -> List[ScenarioSpec]:
    """The per-benchmark scenario cells, proposed first (it carries the
    original-layout row), then the prior-art schemes in column order."""
    common = dict(
        split_layers=tuple(config.iscas_split_layers),
        attacks=("network_flow",),
        metrics=("security",),
    )
    cells = [
        config.scenario(benchmark, layouts=("original", "protected"), **common),
        config.scenario(benchmark, scheme="placement_perturbation", **common),
    ]
    for strategy in RANDOMIZATION_STRATEGIES:
        cells.append(config.scenario(
            benchmark, scheme="layout_randomization",
            scheme_params={"strategy": strategy}, **common,
        ))
    return cells


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Table 4."""
    config = config if config is not None else ExperimentConfig()
    specs: List[ScenarioSpec] = []
    for benchmark in config.iscas_benchmarks:
        specs.extend(_scheme_cells(config, benchmark))
    return specs


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 4."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 4: Comparison with placement perturbation schemes "
              "(CCR/OER/HD %, averaged over splits M3-M5)",
        columns=["Benchmark", "Orig CCR", "Orig OER", "Orig HD",
                 "PlacePerturb CCR", "Random CCR", "G-Color CCR", "G-Type1 CCR",
                 "G-Type2 CCR", "Proposed CCR", "Proposed OER", "Proposed HD"],
    )
    workspace = default_workspace()
    for benchmark in config.iscas_benchmarks:
        cells = workspace.run_scenarios(_scheme_cells(config, benchmark))
        proposed_cell, perturb_cell, *random_cells = cells
        original = proposed_cell.security_mean(layout="original")
        proposed = proposed_cell.security_mean(layout="protected")
        perturbed = perturb_cell.security_mean()
        randomized = [cell.security_mean()["ccr"] for cell in random_cells]
        table.add_row([
            benchmark,
            round(original["ccr"], 1), round(original["oer"], 1), round(original["hd"], 1),
            round(perturbed["ccr"], 1),
            *[round(ccr, 1) for ccr in randomized],
            round(proposed["ccr"], 1), round(proposed["oer"], 1), round(proposed["hd"], 1),
        ])
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
