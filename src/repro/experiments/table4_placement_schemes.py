"""Table 4 — comparison with placement-perturbation schemes (ISCAS-85).

For every ISCAS-85 benchmark the experiment runs the network-flow attack on

* the original (unprotected) layout,
* the selective placement perturbation of Wang et al. [5],
* the four layout-randomization strategies of Sengupta et al. [8]
  (CCR only, as in the paper), and
* the proposed scheme,

and reports CCR / OER / HD averaged over splits after M3, M4 and M5 — the
same averaging the paper applies because the prior art does not state its
split layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks.network_flow import network_flow_attack
from repro.circuits.registry import get_benchmark
from repro.defenses.layout_randomization import LayoutRandomizationStrategy, layout_randomization_defense
from repro.defenses.placement_perturbation import placement_perturbation_defense
from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.layout.layout import Layout
from repro.metrics.security import evaluate_attack
from repro.sm.split import extract_feol
from repro.utils.tables import Table


def attack_layout_average(layout: Layout, split_layers: Sequence[int],
                          num_patterns: int, restrict_to_protected: bool = False,
                          seed: int = 0) -> Dict[str, float]:
    """Run the network-flow attack at several split layers and average CCR/OER/HD."""
    ccr: List[float] = []
    oer: List[float] = []
    hd: List[float] = []
    for split in split_layers:
        view = extract_feol(layout, split)
        outcome = network_flow_attack(view)
        report = evaluate_attack(
            view, outcome.assignment, outcome.recovered_netlist,
            restrict_to_protected=restrict_to_protected,
            num_patterns=num_patterns, seed=seed,
        )
        ccr.append(report.ccr_percent)
        oer.append(report.oer_percent)
        hd.append(report.hd_percent)
    count = max(len(ccr), 1)
    return {
        "ccr": sum(ccr) / count,
        "oer": sum(oer) / count,
        "hd": sum(hd) / count,
    }


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 4."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 4: Comparison with placement perturbation schemes "
              "(CCR/OER/HD %, averaged over splits M3-M5)",
        columns=["Benchmark", "Orig CCR", "Orig OER", "Orig HD",
                 "PlacePerturb CCR", "Random CCR", "G-Color CCR", "G-Type1 CCR",
                 "G-Type2 CCR", "Proposed CCR", "Proposed OER", "Proposed HD"],
    )
    for benchmark in config.iscas_benchmarks:
        result = protection_artifacts(benchmark, config)
        netlist = get_benchmark(benchmark, seed=config.seed)
        splits = config.iscas_split_layers
        original = attack_layout_average(
            result.original_layout, splits, config.num_patterns, seed=config.seed
        )
        perturbed_layout = placement_perturbation_defense(netlist, seed=config.seed)
        perturbed = attack_layout_average(
            perturbed_layout, splits, config.num_patterns, seed=config.seed
        )
        randomized: Dict[str, float] = {}
        for strategy in LayoutRandomizationStrategy:
            layout = layout_randomization_defense(netlist, strategy, seed=config.seed)
            randomized[strategy.value] = attack_layout_average(
                layout, splits, config.num_patterns, seed=config.seed
            )["ccr"]
        proposed = attack_layout_average(
            result.protected_layout, splits, config.num_patterns,
            restrict_to_protected=True, seed=config.seed,
        )
        table.add_row([
            benchmark,
            round(original["ccr"], 1), round(original["oer"], 1), round(original["hd"], 1),
            round(perturbed["ccr"], 1),
            round(randomized["random"], 1), round(randomized["g_color"], 1),
            round(randomized["g_type1"], 1), round(randomized["g_type2"], 1),
            round(proposed["ccr"], 1), round(proposed["oer"], 1), round(proposed["hd"], 1),
        ])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
