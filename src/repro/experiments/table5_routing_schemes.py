"""Table 5 — comparison with routing-perturbation schemes (ISCAS-85).

Same structure as Table 4, but the baselines are the routing-centric
defenses: block-pin swapping [3], routing perturbation [12] and the
synergistic scheme of Feng et al. [9] — one scenario cell per
(benchmark, scheme), all declared against the defense registry.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.utils.tables import Table

#: Prior-art schemes in the paper's column order.
ROUTING_SCHEMES = ("pin_swapping", "routing_perturbation", "synergistic")


def _scheme_cells(config: ExperimentConfig, benchmark: str) -> List[ScenarioSpec]:
    common = dict(
        split_layers=tuple(config.iscas_split_layers),
        attacks=("network_flow",),
        metrics=("security",),
    )
    cells = [config.scenario(benchmark, layouts=("original", "protected"), **common)]
    for scheme in ROUTING_SCHEMES:
        cells.append(config.scenario(benchmark, scheme=scheme, **common))
    return cells


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Table 5."""
    config = config if config is not None else ExperimentConfig()
    specs: List[ScenarioSpec] = []
    for benchmark in config.iscas_benchmarks:
        specs.extend(_scheme_cells(config, benchmark))
    return specs


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 5."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 5: Comparison with routing perturbation schemes "
              "(CCR/OER/HD %, averaged over splits M3-M5)",
        columns=["Benchmark", "Orig CCR", "Orig HD",
                 "PinSwap CCR", "PinSwap HD",
                 "RoutePerturb CCR", "RoutePerturb HD",
                 "Synergistic CCR", "Synergistic HD",
                 "Proposed CCR", "Proposed OER", "Proposed HD"],
    )
    workspace = default_workspace()
    for benchmark in config.iscas_benchmarks:
        cells = workspace.run_scenarios(_scheme_cells(config, benchmark))
        proposed_cell, pin_swap, route_perturb, synergistic = cells
        original = proposed_cell.security_mean(layout="original")
        proposed = proposed_cell.security_mean(layout="protected")
        row = [benchmark, round(original["ccr"], 1), round(original["hd"], 1)]
        for cell in (pin_swap, route_perturb, synergistic):
            mean = cell.security_mean()
            row.extend([round(mean["ccr"], 1), round(mean["hd"], 1)])
        row.extend([
            round(proposed["ccr"], 1), round(proposed["oer"], 1), round(proposed["hd"], 1),
        ])
        table.add_row(row)
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
