"""Table 5 — comparison with routing-perturbation schemes (ISCAS-85).

Same structure as Table 4, but the baselines are the routing-centric
defenses: block-pin swapping [3], routing perturbation [12] and the
synergistic scheme of Feng et al. [9].
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.registry import get_benchmark
from repro.defenses.pin_swapping import pin_swapping_defense
from repro.defenses.routing_perturbation import routing_perturbation_defense
from repro.defenses.synergistic import synergistic_defense
from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.experiments.table4_placement_schemes import attack_layout_average
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 5."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 5: Comparison with routing perturbation schemes "
              "(CCR/OER/HD %, averaged over splits M3-M5)",
        columns=["Benchmark", "Orig CCR", "Orig HD",
                 "PinSwap CCR", "PinSwap HD",
                 "RoutePerturb CCR", "RoutePerturb HD",
                 "Synergistic CCR", "Synergistic HD",
                 "Proposed CCR", "Proposed OER", "Proposed HD"],
    )
    for benchmark in config.iscas_benchmarks:
        result = protection_artifacts(benchmark, config)
        netlist = get_benchmark(benchmark, seed=config.seed)
        splits = config.iscas_split_layers
        original = attack_layout_average(
            result.original_layout, splits, config.num_patterns, seed=config.seed
        )
        pin_swap = attack_layout_average(
            pin_swapping_defense(netlist, seed=config.seed), splits,
            config.num_patterns, seed=config.seed,
        )
        route_perturb = attack_layout_average(
            routing_perturbation_defense(netlist, seed=config.seed), splits,
            config.num_patterns, seed=config.seed,
        )
        synergistic = attack_layout_average(
            synergistic_defense(netlist, seed=config.seed), splits,
            config.num_patterns, seed=config.seed,
        )
        proposed = attack_layout_average(
            result.protected_layout, splits, config.num_patterns,
            restrict_to_protected=True, seed=config.seed,
        )
        table.add_row([
            benchmark,
            round(original["ccr"], 1), round(original["hd"], 1),
            round(pin_swap["ccr"], 1), round(pin_swap["hd"], 1),
            round(route_perturb["ccr"], 1), round(route_perturb["hd"], 1),
            round(synergistic["ccr"], 1), round(synergistic["hd"], 1),
            round(proposed["ccr"], 1), round(proposed["oer"], 1), round(proposed["hd"], 1),
        ])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
