"""Figure 6 — PPA overheads on ISCAS-85, compared with Sengupta et al. [8].

The paper's bar chart reports the area, power and delay overheads of its
scheme against those of the layout-randomization scheme on the ISCAS-85
suite.  Both schemes are run through this reproduction's flow so the bars are
regenerated (the paper-quoted averages are kept in
:mod:`repro.experiments.paper_data`).
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.registry import get_benchmark
from repro.defenses.layout_randomization import LayoutRandomizationStrategy, layout_randomization_defense
from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.metrics.ppa import ppa_overheads
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Fig. 6 as an overhead table (percent)."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Figure 6: PPA overheads on ISCAS-85 (%) — proposed vs layout randomization [8]",
        columns=["Benchmark", "Proposed area", "Proposed power", "Proposed delay",
                 "Randomized area", "Randomized power", "Randomized delay"],
    )
    sums = [0.0] * 6
    count = 0
    for benchmark in config.iscas_benchmarks:
        result = protection_artifacts(benchmark, config)
        over = result.overheads
        netlist = get_benchmark(benchmark, seed=config.seed)
        randomized_layout = layout_randomization_defense(
            netlist, LayoutRandomizationStrategy.RANDOM,
            floorplan=result.original_layout.floorplan, seed=config.seed,
        )
        randomized = ppa_overheads(randomized_layout, result.original_layout)
        row = [
            round(over["area_percent"], 2), round(over["power_percent"], 2),
            round(over["delay_percent"], 2),
            round(randomized["area_percent"], 2), round(randomized["power_percent"], 2),
            round(randomized["delay_percent"], 2),
        ]
        table.add_row([benchmark, *row])
        sums = [s + value for s, value in zip(sums, row)]
        count += 1
    if count:
        table.add_row(["Average", *[round(s / count, 2) for s in sums]])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
