"""Figure 6 — PPA overheads on ISCAS-85, compared with Sengupta et al. [8].

The paper's bar chart reports the area, power and delay overheads of its
scheme against those of the layout-randomization scheme on the ISCAS-85
suite.  Both schemes are run through this reproduction's flow so the bars are
regenerated (the paper-quoted averages are kept in
:mod:`repro.experiments.paper_data`).

Two scenario cells per benchmark (proposed, layout randomization), each with
the ``ppa_overheads`` compare metric against the original baseline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.utils.tables import Table


def _cells(config: ExperimentConfig, benchmark: str) -> List[ScenarioSpec]:
    return [
        config.scenario(benchmark, metrics=("ppa_overheads",)),
        config.scenario(
            benchmark, scheme="layout_randomization",
            scheme_params={"strategy": "random"},
            metrics=("ppa_overheads",),
        ),
    ]


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Fig. 6."""
    config = config if config is not None else ExperimentConfig()
    specs: List[ScenarioSpec] = []
    for benchmark in config.iscas_benchmarks:
        specs.extend(_cells(config, benchmark))
    return specs


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Fig. 6 as an overhead table (percent)."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Figure 6: PPA overheads on ISCAS-85 (%) — proposed vs layout randomization [8]",
        columns=["Benchmark", "Proposed area", "Proposed power", "Proposed delay",
                 "Randomized area", "Randomized power", "Randomized delay"],
    )
    workspace = default_workspace()
    sums = [0.0] * 6
    count = 0
    for benchmark in config.iscas_benchmarks:
        proposed_cell, randomized_cell = workspace.run_scenarios(_cells(config, benchmark))
        over = proposed_cell.metric("ppa_overheads")
        randomized = randomized_cell.metric("ppa_overheads")
        row = [
            round(over["area_percent"], 2), round(over["power_percent"], 2),
            round(over["delay_percent"], 2),
            round(randomized["area_percent"], 2), round(randomized["power_percent"], 2),
            round(randomized["delay_percent"], 2),
        ]
        table.add_row([benchmark, *row])
        sums = [s + value for s, value in zip(sums, row)]
        count += 1
    if count:
        table.add_row(["Average", *[round(s / count, 2) for s in sums]])
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
