"""Figure 4 — distance distributions for superblue18.

The paper plots, per net, the distance between the driver and its sinks for
the original, naively lifted and proposed layouts of superblue18.  Without a
plotting dependency the experiment reports the distribution as percentile
series (which is what the scatter plots convey: original and lifted hug small
values, proposed spreads up to the die diagonal) plus fixed-width histograms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.metrics.distances import distance_histogram, distance_stats
from repro.utils.tables import Table

#: Percentiles reported for each layout's distance distribution.
PERCENTILES = (10, 25, 50, 75, 90, 95, 99, 100)

#: Benchmark the paper's Fig. 4 is drawn for; the runner's artefact prewarm
#: reads this too, so it stays in sync with the run()/histograms() defaults.
DEFAULT_BENCHMARK = "superblue18"


def _percentile_series(values: Sequence[float],
                       percentiles: Sequence[float]) -> List[float]:
    """All requested percentiles from one sort (nearest-rank convention).

    Sorting once and gathering every percentile index replaces the historical
    one-sort-per-percentile helper; the selected elements are identical.
    """
    if not len(values):
        return [0.0] * len(percentiles)
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    top = len(ordered) - 1
    return [
        float(ordered[min(top, int(round(p / 100.0 * top)))]) for p in percentiles
    ]


def run(config: Optional[ExperimentConfig] = None,
        benchmark: str = DEFAULT_BENCHMARK) -> Table:
    """Regenerate Fig. 4 as a percentile table."""
    config = config if config is not None else ExperimentConfig()
    result = protection_artifacts(benchmark, config)
    protected_nets = set(result.protected_layout.protected_nets)
    table = Table(
        title=f"Figure 4: distance distribution percentiles for {benchmark} (microns)",
        columns=["Layout", *[f"p{p}" for p in PERCENTILES]],
    )
    layouts = [
        ("Original", result.original_layout),
        ("Lifted", result.naive_lifted_layout),
        ("Proposed", result.protected_layout),
    ]
    for label, layout in layouts:
        if layout is None:
            continue
        stats = distance_stats(layout, protected_nets)
        series = _percentile_series(stats.values, PERCENTILES)
        table.add_row([label, *[round(value, 2) for value in series]])
    return table


def histograms(config: Optional[ExperimentConfig] = None,
               benchmark: str = DEFAULT_BENCHMARK, num_bins: int = 16) -> Dict[str, List[int]]:
    """Fixed-width histograms of the three distributions (plot-ready data)."""
    config = config if config is not None else ExperimentConfig()
    result = protection_artifacts(benchmark, config)
    protected_nets = set(result.protected_layout.protected_nets)
    output: Dict[str, List[int]] = {}
    layouts = [
        ("original", result.original_layout),
        ("lifted", result.naive_lifted_layout),
        ("proposed", result.protected_layout),
    ]
    for label, layout in layouts:
        if layout is None:
            continue
        stats = distance_stats(layout, protected_nets)
        output[label] = distance_histogram(stats.values, num_bins)
    return output


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
