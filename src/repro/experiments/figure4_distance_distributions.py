"""Figure 4 — distance distributions for superblue18.

The paper plots, per net, the distance between the driver and its sinks for
the original, naively lifted and proposed layouts of superblue18.  Without a
plotting dependency the experiment reports the distribution as percentile
series (which is what the scatter plots convey: original and lifted hug small
values, proposed spreads up to the die diagonal) plus fixed-width histograms.

One :class:`~repro.api.spec.ScenarioSpec` (the ``distances`` metric with raw
values) over the three layout variants of the proposed build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.metrics.distances import distance_histogram
from repro.utils.tables import Table

#: Percentiles reported for each layout's distance distribution.
PERCENTILES = (10, 25, 50, 75, 90, 95, 99, 100)

#: Benchmark the paper's Fig. 4 is drawn for; the runner's artefact prewarm
#: reads this too, so it stays in sync with the run()/histograms() defaults.
DEFAULT_BENCHMARK = "superblue18"


def _percentile_series(values: Sequence[float],
                       percentiles: Sequence[float]) -> List[float]:
    """All requested percentiles from one sort (nearest-rank convention).

    Sorting once and gathering every percentile index replaces the historical
    one-sort-per-percentile helper; the selected elements are identical.
    """
    if not len(values):
        return [0.0] * len(percentiles)
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    top = len(ordered) - 1
    return [
        float(ordered[min(top, int(round(p / 100.0 * top)))]) for p in percentiles
    ]


def scenarios(config: Optional[ExperimentConfig] = None,
              benchmark: str = DEFAULT_BENCHMARK) -> List[ScenarioSpec]:
    """The scenario behind Fig. 4 (one spec; raw distance values included)."""
    config = config if config is not None else ExperimentConfig()
    return [
        config.scenario(
            benchmark,
            layouts=("original", "lifted", "protected"),
            metrics=({"name": "distances", "params": {"include_values": True}},),
        )
    ]


def run(config: Optional[ExperimentConfig] = None,
        benchmark: str = DEFAULT_BENCHMARK) -> Table:
    """Regenerate Fig. 4 as a percentile table."""
    config = config if config is not None else ExperimentConfig()
    (result,) = default_workspace().run_scenarios(scenarios(config, benchmark))
    table = Table(
        title=f"Figure 4: distance distribution percentiles for {benchmark} (microns)",
        columns=["Layout", *[f"p{p}" for p in PERCENTILES]],
    )
    for variant, label in (("original", "Original"), ("lifted", "Lifted"),
                           ("protected", "Proposed")):
        values = result.metric("distances", variant)["values"]
        series = _percentile_series(values, PERCENTILES)
        table.add_row([label, *[round(value, 2) for value in series]])
    return table


def histograms(config: Optional[ExperimentConfig] = None,
               benchmark: str = DEFAULT_BENCHMARK, num_bins: int = 16) -> Dict[str, List[int]]:
    """Fixed-width histograms of the three distributions (plot-ready data)."""
    config = config if config is not None else ExperimentConfig()
    (result,) = default_workspace().run_scenarios(scenarios(config, benchmark))
    return {
        label: distance_histogram(result.metric("distances", variant)["values"], num_bins)
        for variant, label in (("original", "original"), ("lifted", "lifted"),
                               ("protected", "proposed"))
    }


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
