"""Table 2 — additional vias of lifted and proposed layouts over the original.

For every superblue benchmark the experiment reports the original via counts
per layer pair (V12 … V910) and the percentage increase of the naive-lifting
and proposed layouts, using the same randomized net set for both (as the
paper does "for a fair comparison").

One :class:`~repro.api.spec.ScenarioSpec` per benchmark: the ``via_counts``
metric provides the original row, the ``via_delta`` (compare) metric the
lifted/proposed percentage rows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.metrics.vias import VIA_NAMES
from repro.utils.tables import Table


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Table 2."""
    config = config if config is not None else ExperimentConfig()
    return [
        config.scenario(
            benchmark,
            layouts=("original", "lifted", "protected"),
            metrics=("via_counts", "via_delta"),
        )
        for benchmark in config.superblue_benchmarks
    ]


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 2."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 2: Additional vias over original superblue layouts",
        columns=["Benchmark", "Layout", *VIA_NAMES, "Total"],
    )
    for result in default_workspace().run_scenarios(scenarios(config)):
        counts = result.metric("via_counts", "original")
        table.add_row([
            result.benchmark, "Original",
            *[counts["counts"][name] for name in VIA_NAMES], counts["total"],
        ])
        for variant, label in (("lifted", "Lifted (%)"), ("protected", "Proposed (%)")):
            deltas = result.metric("via_delta", variant)
            table.add_row([
                result.benchmark, label,
                *[round(deltas[name], 2) for name in VIA_NAMES],
                round(deltas["total"], 2),
            ])
    return table


def v56_increase_over_lifted(config: Optional[ExperimentConfig] = None) -> float:
    """Average V56 increase (%) of the proposed scheme over naive lifting.

    This regenerates the Sec. 5.2 claim "taking M5 as the split layer, our
    scheme increases the vias V56 by 30.65 % on average when compared to
    naive lifting".
    """
    config = config if config is not None else ExperimentConfig()
    workspace = default_workspace()
    increases = []
    for benchmark in config.superblue_benchmarks:
        result = workspace.protection(
            benchmark, config.protection_config(benchmark),
            scale=config.benchmark_scale(benchmark),
        )
        if result.naive_lifted_layout is None:
            continue
        lifted = result.naive_lifted_layout.via_counts().get((5, 6), 0)
        protected = result.protected_layout.via_counts().get((5, 6), 0)
        if lifted > 0:
            increases.append(100.0 * (protected - lifted) / lifted)
    return sum(increases) / len(increases) if increases else 0.0


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
