"""Table 2 — additional vias of lifted and proposed layouts over the original.

For every superblue benchmark the experiment reports the original via counts
per layer pair (V12 … V910) and the percentage increase of the naive-lifting
and proposed layouts, using the same randomized net set for both (as the
paper does "for a fair comparison").
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.metrics.vias import VIA_NAMES, via_counts_by_name, via_delta_percent, total_via_delta_percent
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 2."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 2: Additional vias over original superblue layouts",
        columns=["Benchmark", "Layout", *VIA_NAMES, "Total"],
    )
    for benchmark in config.superblue_benchmarks:
        result = protection_artifacts(benchmark, config)
        original = result.original_layout
        lifted = result.naive_lifted_layout
        protected = result.protected_layout
        counts = via_counts_by_name(original)
        table.add_row(
            [benchmark, "Original", *[counts[name] for name in VIA_NAMES], original.total_vias()]
        )
        if lifted is not None:
            deltas = via_delta_percent(lifted, original)
            table.add_row(
                [benchmark, "Lifted (%)", *[round(deltas[name], 2) for name in VIA_NAMES],
                 round(total_via_delta_percent(lifted, original), 2)]
            )
        deltas = via_delta_percent(protected, original)
        table.add_row(
            [benchmark, "Proposed (%)", *[round(deltas[name], 2) for name in VIA_NAMES],
             round(total_via_delta_percent(protected, original), 2)]
        )
    return table


def v56_increase_over_lifted(config: Optional[ExperimentConfig] = None) -> float:
    """Average V56 increase (%) of the proposed scheme over naive lifting.

    This regenerates the Sec. 5.2 claim "taking M5 as the split layer, our
    scheme increases the vias V56 by 30.65 % on average when compared to
    naive lifting".
    """
    config = config if config is not None else ExperimentConfig()
    increases = []
    for benchmark in config.superblue_benchmarks:
        result = protection_artifacts(benchmark, config)
        if result.naive_lifted_layout is None:
            continue
        lifted = result.naive_lifted_layout.via_counts().get((5, 6), 0)
        protected = result.protected_layout.via_counts().get((5, 6), 0)
        if lifted > 0:
            increases.append(100.0 * (protected - lifted) / lifted)
    return sum(increases) / len(increases) if increases else 0.0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
