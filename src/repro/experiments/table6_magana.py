"""Table 6 — ΔV67 / ΔV78 versus the routing-blockage defense of Magaña et al.

The paper splits after M6 and restores the true connectivity in M8, then
compares the *additional* V67 and V78 vias (over the original layout) of its
scheme against the routing-blockage numbers reported in [7].  Here both
defenses are run through the same flow so the two columns are regenerated
rather than quoted.

Two scenario cells per benchmark: the proposed scheme (``via_delta`` against
its own original layout) and the ``routing_blockage`` scheme (``via_delta``
against an identically constructed original baseline).  The blockage cell's
``floorplan_utilization`` pins the floorplan to the superblue profile
utilization — the same floorplan the proposed flow sizes its layouts with —
so both columns compare against bit-identical originals.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.circuits.superblue import SUPERBLUE_PROFILES
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.utils.tables import Table


def _cells(config: ExperimentConfig, benchmark: str) -> List[ScenarioSpec]:
    profile_utilization = SUPERBLUE_PROFILES[benchmark].utilization_percent / 100.0
    return [
        config.scenario(benchmark, metrics=("via_delta",)),
        config.scenario(
            benchmark, scheme="routing_blockage",
            scheme_params={"floorplan_utilization": profile_utilization},
            metrics=("via_delta",),
        ),
    ]


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Table 6."""
    config = config if config is not None else ExperimentConfig()
    specs: List[ScenarioSpec] = []
    for benchmark in config.superblue_benchmarks:
        specs.extend(_cells(config, benchmark))
    return specs


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 6."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 6: Additional V67/V78 (%) — routing blockage [7] vs proposed "
              "(split after M6, restore in M8)",
        columns=["Benchmark", "Blockage dV67", "Blockage dV78",
                 "Proposed dV67", "Proposed dV78"],
    )
    workspace = default_workspace()
    sums = [0.0, 0.0, 0.0, 0.0]
    count = 0
    for benchmark in config.superblue_benchmarks:
        proposed_cell, blockage_cell = workspace.run_scenarios(_cells(config, benchmark))
        blockage = blockage_cell.metric("via_delta")
        proposed = proposed_cell.metric("via_delta")
        row = [
            round(blockage["V67"], 2), round(blockage["V78"], 2),
            round(proposed["V67"], 2), round(proposed["V78"], 2),
        ]
        table.add_row([benchmark, *row])
        sums = [s + value for s, value in zip(sums, row)]
        count += 1
    if count:
        table.add_row(["Average", *[round(s / count, 2) for s in sums]])
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
