"""Table 6 — ΔV67 / ΔV78 versus the routing-blockage defense of Magaña et al.

The paper splits after M6 and restores the true connectivity in M8, then
compares the *additional* V67 and V78 vias (over the original layout) of its
scheme against the routing-blockage numbers reported in [7].  Here both
defenses are run through the same flow so the two columns are regenerated
rather than quoted.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.registry import get_benchmark
from repro.defenses.routing_blockage import routing_blockage_defense
from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.metrics.vias import via_delta_percent
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 6."""
    config = config if config is not None else ExperimentConfig()
    table = Table(
        title="Table 6: Additional V67/V78 (%) — routing blockage [7] vs proposed "
              "(split after M6, restore in M8)",
        columns=["Benchmark", "Blockage dV67", "Blockage dV78",
                 "Proposed dV67", "Proposed dV78"],
    )
    sums = [0.0, 0.0, 0.0, 0.0]
    count = 0
    for benchmark in config.superblue_benchmarks:
        result = protection_artifacts(benchmark, config)
        original = result.original_layout
        netlist = original.netlist
        blockage_layout = routing_blockage_defense(
            netlist,
            floorplan=original.floorplan,
            utilization=original.metadata.get("utilization", 0.70),
            seed=config.seed,
        )
        blockage = via_delta_percent(blockage_layout, original)
        proposed = via_delta_percent(result.protected_layout, original)
        row = [
            round(blockage["V67"], 2), round(blockage["V78"], 2),
            round(proposed["V67"], 2), round(proposed["V78"], 2),
        ]
        table.add_row([benchmark, *row])
        sums = [s + value for s, value in zip(sums, row)]
        count += 1
    if count:
        table.add_row(["Average", *[round(s / count, 2) for s in sums]])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
