"""Numbers quoted from the paper, for side-by-side reporting.

These are transcribed from the published tables so that EXPERIMENTS.md (and
the benchmark harnesses) can print "paper vs. measured" rows.  They are never
used by any algorithm.
"""

from __future__ import annotations

from typing import Dict

#: Table 1 — distances between connected gates (µm): (mean, median, std).
PAPER_TABLE1: Dict[str, Dict[str, tuple]] = {
    "superblue1": {"original": (14.31, 2.85, 54.84), "lifted": (14.37, 2.92, 54.83),
                   "proposed": (198.46, 48.41, 318.88)},
    "superblue5": {"original": (14.38, 2.99, 49.16), "lifted": (14.39, 2.99, 49.17),
                   "proposed": (244.73, 96.9, 328.84)},
    "superblue10": {"original": (12.66, 2.73, 49.59), "lifted": (12.71, 2.8, 49.58),
                    "proposed": (254.06, 71.03, 372.07)},
    "superblue12": {"original": (19.06, 3.18, 75.37), "lifted": (19.08, 3.23, 75.37),
                    "proposed": (263.21, 81.28, 395.26)},
    "superblue18": {"original": (12.91, 2.54, 41.74), "lifted": (12.93, 2.54, 41.74),
                    "proposed": (208.47, 119.51, 244.81)},
}

#: Table 2 — total-via increase (%) of lifted / proposed layouts over original.
PAPER_TABLE2_TOTALS: Dict[str, Dict[str, float]] = {
    "superblue1": {"lifted": 0.61, "proposed": 5.87},
    "superblue5": {"lifted": 0.9, "proposed": 9.2},
    "superblue10": {"lifted": 0.52, "proposed": 7.90},
    "superblue12": {"lifted": 0.2, "proposed": 7.78},
    "superblue18": {"lifted": 0.73, "proposed": 7.34},
}

#: Sec. 5.2 — V56 increase of proposed over naive lifting, averaged (split M5).
PAPER_V56_OVER_LIFTED_PERCENT = 30.65

#: Table 3 — crouting results for the original layouts: #vpins and E[LS] at
#: bounding boxes 15/30/45 gcells.
PAPER_TABLE3_ORIGINAL: Dict[str, Dict[str, float]] = {
    "superblue1": {"vpins": 73110, "els15": 4.63, "els30": 13.25, "els45": 23.46},
    "superblue5": {"vpins": 67194, "els15": 4.86, "els30": 13.99, "els45": 24.87},
    "superblue10": {"vpins": 155180, "els15": 5.05, "els30": 14.54, "els45": 25.75},
    "superblue12": {"vpins": 127112, "els15": 4.84, "els30": 13.85, "els45": 24.45},
    "superblue18": {"vpins": 50026, "els15": 3.76, "els30": 10.86, "els45": 19.17},
}

#: Table 4 — CCR / OER / HD (%) per ISCAS-85 benchmark for the original
#: layouts and the proposed scheme, plus prior-art CCR averages.
PAPER_TABLE4: Dict[str, Dict[str, tuple]] = {
    "c432": {"original": (92.4, 75.4, 23.4), "proposed": (0.0, 99.9, 48.4)},
    "c880": {"original": (100.0, 0.0, 0.0), "proposed": (0.0, 99.9, 43.4)},
    "c1355": {"original": (95.4, 59.5, 2.4), "proposed": (0.0, 99.9, 40.1)},
    "c1908": {"original": (97.5, 52.3, 4.3), "proposed": (0.0, 99.9, 46.2)},
    "c2670": {"original": (86.3, 99.9, 7.0), "proposed": (0.0, 99.9, 39.8)},
    "c3540": {"original": (88.2, 95.4, 18.2), "proposed": (0.0, 99.9, 47.9)},
    "c5315": {"original": (93.5, 98.7, 4.3), "proposed": (0.0, 99.9, 38.3)},
    "c6288": {"original": (97.8, 36.8, 3.0), "proposed": (0.0, 99.9, 31.6)},
    "c7552": {"original": (97.8, 69.5, 1.6), "proposed": (0.0, 99.9, 27.8)},
}

#: Table 4/5 — average CCR (%) of the prior-art schemes, as quoted.
PAPER_PRIOR_ART_AVERAGE_CCR: Dict[str, float] = {
    "original": 94.3,
    "placement_perturbation_wang": 91.9,
    "randomization_sengupta_random": 57.0,
    "randomization_sengupta_gcolor": 66.1,
    "randomization_sengupta_gtype1": 66.4,
    "randomization_sengupta_gtype2": 62.9,
    "pin_swapping_rajendran": 88.1,
    "routing_perturbation_wang": 72.4,
    "synergistic_feng": 20.8,
    "proposed": 0.0,
}

#: Table 6 — additional V67 / V78 (%) for the routing-blockage defense of
#: Magaña et al. and the proposed scheme (split M6, restore in M8).
PAPER_TABLE6: Dict[str, Dict[str, tuple]] = {
    "superblue1": {"blockage": (23.28, 65.07), "proposed": (36.32, 49.22)},
    "superblue5": {"blockage": (12.74, 24.01), "proposed": (55.12, 59.47)},
    "superblue10": {"blockage": (64.85, 84.09), "proposed": (62.09, 73.12)},
    "superblue12": {"blockage": (16.99, 35.59), "proposed": (79.34, 70.59)},
    "superblue18": {"blockage": (24.73, 58.66), "proposed": (61.87, 124.16)},
    "average": {"blockage": (28.52, 53.48), "proposed": (58.95, 75.31)},
}

#: Sec. 5.3 — average PPA overheads (%) of the proposed scheme.
PAPER_PPA_OVERHEADS: Dict[str, Dict[str, float]] = {
    "iscas85": {"area": 0.0, "power": 11.5, "delay": 10.0},
    "superblue": {"area": 0.0, "power": 3.5, "delay": 2.7},
}

#: Sec. 5.2 — headline averages of the proposed scheme (ISCAS-85).
PAPER_HEADLINE = {"ccr": 0.0, "oer": 99.9, "hd": 40.4}
