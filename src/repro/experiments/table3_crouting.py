"""Table 3 — crouting attack: #vpins and candidate-list sizes E[LS].

For every superblue benchmark and each of the three layouts (original,
lifted, proposed) the experiment runs the routing-centric attack of Magaña et
al. on the FEOL view at the superblue split layer and reports the number of
vpins and the expected candidate-list size for bounding boxes of 15, 30 and
45 gcells.

One :class:`~repro.api.spec.ScenarioSpec` per benchmark: the ``crouting``
attack over the three layout variants, scored by the ``crouting_stats``
metric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.spec import ScenarioSpec
from repro.api.workspace import default_workspace
from repro.attacks.crouting import CRoutingAttackConfig
from repro.experiments.common import ExperimentConfig, make_experiment_sweep
from repro.experiments.table1_distances import LAYOUT_LABELS
from repro.utils.tables import Table


def scenarios(config: Optional[ExperimentConfig] = None) -> List[ScenarioSpec]:
    """The scenario grid behind Table 3."""
    config = config if config is not None else ExperimentConfig()
    return [
        config.scenario(
            benchmark,
            layouts=("original", "lifted", "protected"),
            split_layers=(config.superblue_split_layer,),
            attacks=("crouting",),
            metrics=("crouting_stats",),
        )
        for benchmark in config.superblue_benchmarks
    ]


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 3."""
    config = config if config is not None else ExperimentConfig()
    boxes = CRoutingAttackConfig().bounding_boxes
    table = Table(
        title="Table 3: crouting attack — vpins and candidate list sizes",
        columns=["Benchmark", "Layout", "#VPins", *[f"E[LS] bb{box}" for box in boxes],
                 *[f"Match bb{box} (%)" for box in boxes]],
    )
    for result in default_workspace().run_scenarios(scenarios(config)):
        for variant, label in LAYOUT_LABELS:
            records = result.records(attack="crouting", layout=variant)
            stats = records[0].metrics["crouting_stats"]
            table.add_row([
                result.benchmark, label, stats["num_vpins"],
                *[round(stats["expected_list_size"][box], 2) for box in boxes],
                *[round(stats["match_in_list"][box], 1) for box in boxes],
            ])
    return table


#: Monte-Carlo sweep of this experiment's grid: ``sweep(seeds, config, jobs)``.
sweep = make_experiment_sweep(scenarios)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
