"""Table 3 — crouting attack: #vpins and candidate-list sizes E[LS].

For every superblue benchmark and each of the three layouts (original,
lifted, proposed) the experiment runs the routing-centric attack of Magaña et
al. on the FEOL view at the superblue split layer and reports the number of
vpins and the expected candidate-list size for bounding boxes of 15, 30 and
45 gcells.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.crouting import CRoutingAttackConfig, crouting_attack
from repro.experiments.common import ExperimentConfig, protection_artifacts
from repro.sm.split import extract_feol
from repro.utils.tables import Table


def run(config: Optional[ExperimentConfig] = None) -> Table:
    """Regenerate Table 3."""
    config = config if config is not None else ExperimentConfig()
    attack_config = CRoutingAttackConfig()
    boxes = attack_config.bounding_boxes
    table = Table(
        title="Table 3: crouting attack — vpins and candidate list sizes",
        columns=["Benchmark", "Layout", "#VPins", *[f"E[LS] bb{box}" for box in boxes],
                 *[f"Match bb{box} (%)" for box in boxes]],
    )
    for benchmark in config.superblue_benchmarks:
        result = protection_artifacts(benchmark, config)
        layouts = [
            ("Original", result.original_layout),
            ("Lifted", result.naive_lifted_layout),
            ("Proposed", result.protected_layout),
        ]
        for label, layout in layouts:
            if layout is None:
                continue
            view = extract_feol(layout, config.superblue_split_layer)
            outcome = crouting_attack(view, attack_config)
            table.add_row([
                benchmark, label, outcome.num_vpins,
                *[round(outcome.expected_list_size[box], 2) for box in boxes],
                *[round(outcome.match_in_list[box], 1) for box in boxes],
            ])
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    from repro.utils.tables import format_table

    print(format_table(run()))
