"""Run every experiment and print (or save) the regenerated tables.

Usage::

    python -m repro.experiments.runner              # full default configuration
    python -m repro.experiments.runner --quick      # reduced benchmark sets
    python -m repro.experiments.runner --jobs 4     # parallel artefact builds

The runner shares one artefact cache across all experiments, so the expensive
protection flows run once per benchmark regardless of how many tables consume
them.  With ``--jobs`` > 1 the independent per-benchmark protection flows are
prewarmed in parallel worker processes before the (cheap) table generation
runs serially against the warm cache.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    figure4_distance_distributions,
    figure5_wirelength_layers,
    figure6_ppa,
    headline,
    table1_distances,
    table2_vias,
    table3_crouting,
    table4_placement_schemes,
    table5_routing_schemes,
    table6_magana,
)
from repro.experiments.common import (
    ExperimentConfig,
    default_prewarm_jobs,
    prewarm_artifacts,
)
from repro.utils.tables import Table, format_table

#: Experiment id → run() callable, in the order they are reported.
EXPERIMENTS: Dict[str, Callable[[Optional[ExperimentConfig]], Table]] = {
    "table1": table1_distances.run,
    "table2": table2_vias.run,
    "table3": table3_crouting.run,
    "table4": table4_placement_schemes.run,
    "table5": table5_routing_schemes.run,
    "table6": table6_magana.run,
    "figure4": figure4_distance_distributions.run,
    "figure5": figure5_wirelength_layers.run,
    "figure6": figure6_ppa.run,
    "headline": headline.run,
}

#: Experiment id → scenarios(config) callable: the declarative grid behind
#: each experiment, consumed by seed sweeps (``repro run <exp> --seeds``).
SCENARIO_GRIDS: Dict[str, Callable] = {
    "table1": table1_distances.scenarios,
    "table2": table2_vias.scenarios,
    "table3": table3_crouting.scenarios,
    "table4": table4_placement_schemes.scenarios,
    "table5": table5_routing_schemes.scenarios,
    "table6": table6_magana.scenarios,
    "figure4": figure4_distance_distributions.scenarios,
    "figure5": figure5_wirelength_layers.scenarios,
    "figure6": figure6_ppa.scenarios,
    "headline": headline.scenarios,
}

#: Benchmarks each experiment draws artefacts for: a config suite name
#: ("iscas" / "superblue") or an explicit tuple for single-benchmark figures
#: (prewarming a whole suite for those would waste the most expensive step).
EXPERIMENT_SUITES: Dict[str, object] = {
    "table1": "superblue",
    "table2": "superblue",
    "table3": "superblue",
    "table4": "iscas",
    "table5": "iscas",
    "table6": "superblue",
    "figure4": (figure4_distance_distributions.DEFAULT_BENCHMARK,),
    "figure5": "superblue",
    "figure6": "iscas",
    "headline": "iscas",
}


def quick_config() -> ExperimentConfig:
    """A reduced configuration for smoke runs and CI."""
    return ExperimentConfig(
        iscas_benchmarks=("c432", "c880", "c1908"),
        superblue_benchmarks=("superblue18", "superblue5"),
        superblue_scale=0.0025,
        iscas_split_layers=(4,),
        num_patterns=512,
    )


def benchmarks_for(selected: List[str], config: ExperimentConfig) -> List[str]:
    """The benchmarks the selected experiments will request artefacts for."""
    benchmarks: List[str] = []
    seen = set()
    for name in selected:
        spec = EXPERIMENT_SUITES.get(name)
        if spec == "iscas":
            wanted = config.iscas_benchmarks
        elif spec == "superblue":
            wanted = config.superblue_benchmarks
        else:
            wanted = spec or ()
        for benchmark in wanted:
            if benchmark not in seen:
                seen.add(benchmark)
                benchmarks.append(benchmark)
    return benchmarks


def run_all(config: Optional[ExperimentConfig] = None,
            only: Optional[List[str]] = None,
            jobs: int = 1) -> Dict[str, Table]:
    """Run the selected experiments and return their tables.

    Args:
        config: Shared experiment configuration (default full config).
        only: Subset of experiment names (default all).
        jobs: Worker processes for the parallel artefact prewarm; 1 keeps
            everything serial and in-process.
    """
    config = config if config is not None else ExperimentConfig()
    selected = only if only else list(EXPERIMENTS)
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    if jobs > 1:
        prewarm_artifacts(benchmarks_for(selected, config), config, jobs=jobs)
    results: Dict[str, Table] = {}
    for name in selected:
        start = time.time()
        results[name] = EXPERIMENTS[name](config)
        results[name].title += f"   [{time.time() - start:.1f}s]"
    return results


def build_config(args: argparse.Namespace) -> ExperimentConfig:
    """Resolve the experiment configuration from parsed CLI arguments."""
    config = quick_config() if args.quick else ExperimentConfig()
    if args.superblue_scale is not None:
        # dataclasses.replace keeps every other field (split layers, swap
        # fractions, budgets...) exactly as configured instead of silently
        # resetting them to defaults.
        config = dataclasses.replace(config, superblue_scale=args.superblue_scale)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    import logging

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced benchmark sets")
    parser.add_argument("--only", nargs="*", default=None,
                        help=f"subset of experiments ({', '.join(EXPERIMENTS)})")
    parser.add_argument("--superblue-scale", type=float, default=None,
                        help="override the superblue down-scaling factor")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for the artefact prewarm "
                             f"(default {default_prewarm_jobs()}; 1 = serial)")
    parser.add_argument("--retries", type=int, default=None,
                        help="retry a failed artefact build up to N times "
                             "(total attempts N+1; default 0)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-build timeout in seconds for the parallel "
                             "prewarm (hung workers are killed and re-queued)")
    parser.add_argument("--keep-going", action="store_true",
                        help="tolerate failed prewarm builds (the failing "
                             "experiment still errors when it consumes them)")
    args = parser.parse_args(argv)

    logging.basicConfig(format="%(levelname)s %(name)s: %(message)s")
    from repro.api.cli import apply_resilience_flags

    apply_resilience_flags(args)
    config = build_config(args)
    jobs = args.jobs if args.jobs is not None else default_prewarm_jobs()
    results = run_all(config, args.only, jobs=jobs)
    for table in results.values():
        print(format_table(table))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
