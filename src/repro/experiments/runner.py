"""Run every experiment and print (or save) the regenerated tables.

Usage::

    python -m repro.experiments.runner            # full default configuration
    python -m repro.experiments.runner --quick    # reduced benchmark sets

The runner shares one artefact cache across all experiments, so the expensive
protection flows run once per benchmark regardless of how many tables consume
them.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    figure4_distance_distributions,
    figure5_wirelength_layers,
    figure6_ppa,
    headline,
    table1_distances,
    table2_vias,
    table3_crouting,
    table4_placement_schemes,
    table5_routing_schemes,
    table6_magana,
)
from repro.experiments.common import ExperimentConfig
from repro.utils.tables import Table, format_table

#: Experiment id → run() callable, in the order they are reported.
EXPERIMENTS: Dict[str, Callable[[Optional[ExperimentConfig]], Table]] = {
    "table1": table1_distances.run,
    "table2": table2_vias.run,
    "table3": table3_crouting.run,
    "table4": table4_placement_schemes.run,
    "table5": table5_routing_schemes.run,
    "table6": table6_magana.run,
    "figure4": figure4_distance_distributions.run,
    "figure5": figure5_wirelength_layers.run,
    "figure6": figure6_ppa.run,
    "headline": headline.run,
}


def quick_config() -> ExperimentConfig:
    """A reduced configuration for smoke runs and CI."""
    return ExperimentConfig(
        iscas_benchmarks=("c432", "c880", "c1908"),
        superblue_benchmarks=("superblue18", "superblue5"),
        superblue_scale=0.0025,
        iscas_split_layers=(4,),
        num_patterns=512,
    )


def run_all(config: Optional[ExperimentConfig] = None,
            only: Optional[List[str]] = None) -> Dict[str, Table]:
    """Run the selected experiments and return their tables."""
    config = config if config is not None else ExperimentConfig()
    selected = only if only else list(EXPERIMENTS)
    results: Dict[str, Table] = {}
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
        start = time.time()
        results[name] = EXPERIMENTS[name](config)
        results[name].title += f"   [{time.time() - start:.1f}s]"
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced benchmark sets")
    parser.add_argument("--only", nargs="*", default=None,
                        help=f"subset of experiments ({', '.join(EXPERIMENTS)})")
    parser.add_argument("--superblue-scale", type=float, default=None,
                        help="override the superblue down-scaling factor")
    args = parser.parse_args(argv)

    config = quick_config() if args.quick else ExperimentConfig()
    if args.superblue_scale is not None:
        config = ExperimentConfig(
            iscas_benchmarks=config.iscas_benchmarks,
            superblue_benchmarks=config.superblue_benchmarks,
            superblue_scale=args.superblue_scale,
            iscas_split_layers=config.iscas_split_layers,
            num_patterns=config.num_patterns,
            seed=config.seed,
        )
    results = run_all(config, args.only)
    for table in results.values():
        print(format_table(table))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
