"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper tables; they probe the sensitivity of the scheme to its
main knobs:

* split layer (the commercial-cost argument: security must survive splitting
  after higher layers);
* lift layer (M6 vs M8 correction cells);
* randomization amount (OER-driven stopping vs fixed swap counts);
* attack-hint ablation (how much each hint contributes to the attack).
"""

from __future__ import annotations

from conftest import run_once

from repro.attacks.network_flow import NetworkFlowAttackConfig, network_flow_attack
from repro.circuits import get_benchmark
from repro.core import ProtectionConfig, protect
from repro.core.randomizer import RandomizerConfig, randomize_netlist
from repro.metrics.security import correct_connection_rate
from repro.sm.split import extract_feol
from repro.utils.tables import Table, format_table

BENCHMARK = "c880"
SEED = 1


def _protect(lift_layer=6, fractions=(0.05,)):
    netlist = get_benchmark(BENCHMARK, seed=SEED)
    return protect(netlist, ProtectionConfig(
        lift_layer=lift_layer, swap_fraction_steps=fractions,
        oer_patterns=512, seed=SEED,
    ))


def test_ablation_split_layer(benchmark):
    """CCR of original vs proposed as the split layer moves up (M3..M5)."""

    def run():
        result = _protect()
        table = Table(title="Ablation: split layer vs CCR (%)",
                      columns=["Split", "Original CCR", "Proposed CCR"])
        for split in (3, 4, 5):
            row = [f"M{split}"]
            for layout, restrict in ((result.original_layout, False),
                                     (result.protected_layout, True)):
                view = extract_feol(layout, split)
                attack = network_flow_attack(view)
                row.append(round(correct_connection_rate(view, attack.assignment, restrict), 1))
            table.add_row(row)
        return table

    table = run_once(benchmark, run)
    print()
    print(format_table(table))
    for row in table.rows:
        assert row[2] <= 10.0  # proposed stays near zero at every split


def test_ablation_lift_layer(benchmark):
    """M6 vs M8 correction cells: both defeat the attack; M8 costs more wirelength."""

    def run():
        return _protect(lift_layer=6), _protect(lift_layer=8)

    m6, m8 = run_once(benchmark, run)
    table = Table(title="Ablation: lift layer", columns=[
        "Lift layer", "Proposed CCR (%)", "Wirelength overhead (%)", "Power overhead (%)"])
    for label, result in (("M6", m6), ("M8", m8)):
        view = extract_feol(result.protected_layout, 4)
        attack = network_flow_attack(view)
        ccr = correct_connection_rate(view, attack.assignment, restrict_to_protected=True)
        table.add_row([label, round(ccr, 1),
                       round(result.overheads["wirelength_percent"], 1),
                       round(result.overheads["power_percent"], 1)])
    print()
    print(format_table(table))
    assert all(row[1] <= 10.0 for row in table.rows)


def test_ablation_randomization_amount(benchmark):
    """OER as a function of the number of swapped sink pairs."""

    def run():
        netlist = get_benchmark(BENCHMARK, seed=SEED)
        table = Table(title="Ablation: swaps vs OER", columns=["Swaps", "OER (%)"])
        for swaps in (4, 16, 64, 128):
            result = randomize_netlist(netlist, RandomizerConfig(
                max_swaps=swaps, min_swaps=swaps, target_oer_percent=100.0,
                oer_patterns=512, seed=SEED,
            ))
            table.add_row([result.num_swaps, round(result.oer_percent, 2)])
        return table

    table = run_once(benchmark, run)
    print()
    print(format_table(table))
    oers = [row[1] for row in table.rows]
    assert oers[-1] >= oers[0]
    assert oers[-1] >= 99.0


def test_ablation_attack_hints(benchmark):
    """Contribution of each hint to the network-flow attack on the original layout."""

    def run():
        result = _protect()
        view = extract_feol(result.original_layout, 4)
        table = Table(title="Ablation: attack hints vs CCR on original layout",
                      columns=["Hints", "CCR (%)"])
        configurations = [
            ("distance only", NetworkFlowAttackConfig(
                use_direction_hint=False, use_load_hint=False, use_loop_hint=False)),
            ("+ direction", NetworkFlowAttackConfig(use_load_hint=False, use_loop_hint=False)),
            ("+ load", NetworkFlowAttackConfig(use_loop_hint=False)),
            ("full attack", NetworkFlowAttackConfig()),
        ]
        for label, config in configurations:
            attack = network_flow_attack(view, config)
            table.add_row([label, round(correct_connection_rate(view, attack.assignment), 1)])
        return table

    table = run_once(benchmark, run)
    print()
    print(format_table(table))
    ccrs = [row[1] for row in table.rows]
    assert ccrs[-1] >= ccrs[0]  # the full hint set is at least as strong
