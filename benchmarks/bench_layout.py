"""Micro-benchmarks for the columnar geometry core (``repro.layout.arrays``).

Measures the proximity attack, the Table 1 / Fig. 4 distance statistics and
placement HPWL on the seed-equivalent legacy paths (per-object Python loops)
versus the columnar/grid-accelerated implementations, on superblue-scale
layouts, and writes a ``BENCH_layout.json`` perf-trajectory artifact next to
``BENCH_sim.json``::

    PYTHONPATH=src python benchmarks/bench_layout.py              # writes BENCH_layout.json
    PYTHONPATH=src python benchmarks/bench_layout.py --scales 0.0025 0.01
    PYTHONPATH=src python benchmarks/bench_layout.py --smoke      # CI-sized run

Columnar timings are reported both *cold* (array views and the spatial index
are rebuilt, i.e. first touch after a geometry edit) and *warm* (cached
views, the steady state of an experiment sweep); the headline speedups are
computed against the cold numbers, so the cost of building the views is
charged to the columnar side.
"""

from __future__ import annotations

import argparse
import json
import logging
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.attacks.proximity import (  # noqa: E402
    proximity_attack,
    proximity_attack_reference,
)
from repro.circuits.superblue import superblue_netlist  # noqa: E402
from repro.layout import build_layout  # noqa: E402
from repro.layout.geometry import manhattan  # noqa: E402
from repro.layout.placer import placement_hpwl  # noqa: E402
from repro.metrics.distances import distance_stats  # noqa: E402
from repro.sm.split import extract_feol  # noqa: E402
from repro.utils.host import host_metadata  # noqa: E402

_log = logging.getLogger("repro.bench.layout")

#: Split layer of the superblue routing-centric evaluation (paper setup).
SPLIT_LAYER = 6


def _timeit(fn: Callable[[], object], repeat: int) -> float:
    samples: List[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ---------------------------------------------------------------------------
# Seed-equivalent legacy implementations (the pre-columnar hot paths).
# ---------------------------------------------------------------------------


def _legacy_connected_gate_distances(layout) -> List[float]:
    distances: List[float] = []
    for _net_name, net in layout.netlist.nets.items():
        if net.driver is None:
            continue
        driver_pos = layout.placement.gate_positions.get(net.driver[0])
        if driver_pos is None:
            continue
        for sink_gate, _pin in net.sinks:
            sink_pos = layout.placement.gate_positions.get(sink_gate)
            if sink_pos is not None:
                distances.append(manhattan(driver_pos, sink_pos))
    return distances


def _legacy_distance_stats(layout) -> Dict[str, float]:
    values = _legacy_connected_gate_distances(layout)
    if not values:
        return {"mean": 0.0, "median": 0.0, "std_dev": 0.0}
    return {
        "mean": float(statistics.mean(values)),
        "median": float(statistics.median(values)),
        "std_dev": float(statistics.pstdev(values)) if len(values) > 1 else 0.0,
    }


def _legacy_placement_hpwl(netlist, placement) -> float:
    total = 0.0
    for net in netlist.nets.values():
        xs: List[float] = []
        ys: List[float] = []
        if net.driver is not None:
            p = placement.gate_positions.get(net.driver[0])
            if p is not None:
                xs.append(p.x)
                ys.append(p.y)
        elif net.is_primary_input:
            p = placement.port_positions.get(net.name)
            if p is not None:
                xs.append(p.x)
                ys.append(p.y)
        for sink_gate, _pin in net.sinks:
            p = placement.gate_positions.get(sink_gate)
            if p is not None:
                xs.append(p.x)
                ys.append(p.y)
        for po in net.primary_outputs:
            p = placement.port_positions.get(po)
            if p is not None:
                xs.append(p.x)
                ys.append(p.y)
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


# ---------------------------------------------------------------------------
# Benchmark driver
# ---------------------------------------------------------------------------


def _invalidate_geometry_caches(layout, view) -> None:
    """Force the next columnar call to rebuild every array view (cold path)."""
    layout.placement.bump_geometry_version()
    layout.bump_geometry_version()
    view.__dict__.pop("_geometry_cache", None)


def bench_config(benchmark: str, scale: float, seed: int,
                 repeat: int) -> Dict[str, object]:
    netlist = superblue_netlist(benchmark, scale=scale, seed=seed)
    layout = build_layout(netlist, seed=seed)
    view = extract_feol(layout, SPLIT_LAYER)
    num_sinks = len(view.sink_vpins)
    num_drivers = len(view.driver_vpins)
    _log.info(
        "%s scale=%s: gates=%d sinks=%d drivers=%d",
        benchmark, scale, netlist.num_gates, num_sinks, num_drivers,
    )

    # -- correctness gate: the columnar paths must reproduce the legacy ones
    assert proximity_attack(view).assignment == (
        proximity_attack_reference(view).assignment
    ), "columnar proximity attack diverged from the reference loop"
    assert layout.connected_gate_distances() == (
        _legacy_connected_gate_distances(layout)
    ), "columnar distances diverged from the reference loop"

    timings: Dict[str, float] = {}

    timings["proximity_legacy_s"] = _timeit(
        lambda: proximity_attack_reference(view), max(1, repeat // 3)
    )

    def proximity_cold():
        _invalidate_geometry_caches(layout, view)
        return proximity_attack(view)

    timings["proximity_columnar_cold_s"] = _timeit(proximity_cold, repeat)
    proximity_attack(view)  # prewarm
    timings["proximity_columnar_warm_s"] = _timeit(
        lambda: proximity_attack(view), repeat
    )

    timings["distance_stats_legacy_s"] = _timeit(
        lambda: _legacy_distance_stats(layout), max(1, repeat // 3)
    )

    def distances_cold():
        _invalidate_geometry_caches(layout, view)
        return distance_stats(layout)

    timings["distance_stats_columnar_cold_s"] = _timeit(distances_cold, repeat)
    distance_stats(layout)  # prewarm
    timings["distance_stats_columnar_warm_s"] = _timeit(
        lambda: distance_stats(layout), repeat
    )

    timings["hpwl_legacy_s"] = _timeit(
        lambda: _legacy_placement_hpwl(netlist, layout.placement), max(1, repeat // 3)
    )

    def hpwl_cold():
        layout.placement.bump_geometry_version()
        return placement_hpwl(netlist, layout.placement)

    timings["hpwl_columnar_cold_s"] = _timeit(hpwl_cold, repeat)
    placement_hpwl(netlist, layout.placement)  # prewarm
    timings["hpwl_columnar_warm_s"] = _timeit(
        lambda: placement_hpwl(netlist, layout.placement), repeat
    )

    speedups = {
        "proximity_cold": timings["proximity_legacy_s"] / timings["proximity_columnar_cold_s"],
        "proximity_warm": timings["proximity_legacy_s"] / timings["proximity_columnar_warm_s"],
        "distance_stats_cold": (
            timings["distance_stats_legacy_s"] / timings["distance_stats_columnar_cold_s"]
        ),
        "distance_stats_warm": (
            timings["distance_stats_legacy_s"] / timings["distance_stats_columnar_warm_s"]
        ),
        "hpwl_cold": timings["hpwl_legacy_s"] / timings["hpwl_columnar_cold_s"],
        "hpwl_warm": timings["hpwl_legacy_s"] / timings["hpwl_columnar_warm_s"],
    }
    return {
        "benchmark": benchmark,
        "scale": scale,
        "split_layer": SPLIT_LAYER,
        "num_gates": netlist.num_gates,
        "num_nets": netlist.num_nets,
        "num_sink_vpins": num_sinks,
        "num_driver_vpins": num_drivers,
        "timings_s": {k: round(v, 6) for k, v in timings.items()},
        "speedups": {k: round(v, 2) for k, v in speedups.items()},
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="superblue12",
                        help="superblue design to scale (default: the largest)")
    parser.add_argument("--scales", type=float, nargs="+",
                        default=[0.0025, 0.01],
                        help="superblue down-scaling factors (largest last)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=5,
                        help="repetitions for the fast paths (legacy uses 1/3)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (one small config)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_layout.json")
    args = parser.parse_args()
    if args.smoke:
        args.scales = [0.001]
        args.repeat = 3

    configs = [
        bench_config(args.benchmark, scale, args.seed, args.repeat)
        for scale in args.scales
    ]
    largest = max(configs, key=lambda c: c["num_gates"])
    generated_utc = datetime.now(timezone.utc).isoformat(timespec="seconds")
    payload = {
        "meta": {
            "generated_utc": generated_utc,
            "host": host_metadata(generated_utc),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "notes": (
                "Legacy = seed-equivalent per-object Python loops; columnar = "
                "grid/array implementations of repro.layout.arrays.  Cold numbers "
                "rebuild the cached views (first touch after a geometry edit), "
                "warm numbers reuse them.  The columnar paths are asserted "
                "bit-exact against the legacy paths before timing."
            ),
        },
        "configs": configs,
        "largest_config_speedups": largest["speedups"],
    }
    # Sorted keys keep the committed artifact (and CI log diffs) stable.
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _log.info("wrote %s", args.output)
    for config in configs:
        _log.info(
            "%s@%s: proximity x%s cold / x%s warm, distance stats x%s cold",
            config["benchmark"], config["scale"],
            config["speedups"]["proximity_cold"],
            config["speedups"]["proximity_warm"],
            config["speedups"]["distance_stats_cold"],
        )


if __name__ == "__main__":
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    main()
