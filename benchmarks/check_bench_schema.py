"""Schema check for the committed ``BENCH_*.json`` perf artefacts.

Every bench script stamps the same ``meta`` provenance block (see
:mod:`repro.utils.host`); the per-file result sections differ.  This
validator pins both, so a bench script drifting back to the legacy
top-level ``generated_utc``/``python``/``machine`` layout — or dropping a
section CI dashboards read — fails the bench-smoke job instead of
producing a silently unreadable artefact::

    python benchmarks/check_bench_schema.py BENCH_layout.json BENCH_build.json
    python benchmarks/check_bench_schema.py /tmp/BENCH_*.json

The artefact kind (layout / build / sim) is inferred from the file name.
Exit status is non-zero on the first malformed artefact, with every
violation listed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

#: Keys :func:`repro.utils.host.host_metadata` guarantees in ``meta.host``.
HOST_KEYS = (
    "timestamp_utc", "python", "numpy", "machine", "system",
    "cpu_count", "git_rev",
)

#: Required top-level result sections per artefact kind.
SECTIONS = {
    "layout": ("configs", "largest_config_speedups"),
    "build": ("build_path", "seed_sweep", "seed_batch", "store"),
    "sim": ("simulation", "attack", "speedups_vs_seed"),
}

#: Legacy top-level keys the meta block replaced; their reappearance means
#: a script regressed to the pre-meta layout.
LEGACY_TOP_LEVEL = ("generated_utc", "python", "machine", "host")


def artefact_kind(path: Path) -> str:
    """``layout`` / ``build`` / ``sim``, inferred from the file name."""
    stem = path.name
    for kind in SECTIONS:
        if f"BENCH_{kind}" in stem:
            return kind
    raise ValueError(
        f"{path}: cannot infer artefact kind from the file name "
        f"(expected BENCH_layout/BENCH_build/BENCH_sim)"
    )


def check_payload(payload: Any, kind: str) -> List[str]:
    """Every schema violation in ``payload``, empty when well-formed."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]

    meta = payload.get("meta")
    if not isinstance(meta, dict):
        problems.append("missing 'meta' block (legacy top-level layout?)")
    else:
        if not isinstance(meta.get("generated_utc"), str):
            problems.append("meta.generated_utc missing or not a string")
        host = meta.get("host")
        if not isinstance(host, dict):
            problems.append("meta.host missing or not an object")
        else:
            for key in HOST_KEYS:
                if key not in host:
                    problems.append(f"meta.host.{key} missing")
    for key in LEGACY_TOP_LEVEL:
        if key in payload:
            problems.append(
                f"legacy top-level key {key!r} present — provenance belongs "
                f"under 'meta'"
            )

    for section in SECTIONS[kind]:
        if section not in payload:
            problems.append(f"missing section {section!r}")
        elif not isinstance(payload[section], (dict, list)):
            problems.append(
                f"section {section!r} must be an object or array, got "
                f"{type(payload[section]).__name__}"
            )

    if kind == "layout" and isinstance(payload.get("configs"), list):
        if not payload["configs"]:
            problems.append("'configs' is empty")
        for index, config in enumerate(payload["configs"]):
            if not isinstance(config, dict):
                problems.append(f"configs[{index}] is not an object")
                continue
            for key in ("benchmark", "timings_s", "speedups"):
                if key not in config:
                    problems.append(f"configs[{index}].{key} missing")
    return problems


def check_file(path: Path) -> List[str]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable: {error}"]
    return check_payload(payload, artefact_kind(path))


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", type=Path, nargs="+",
                        help="BENCH_*.json artefacts to validate")
    args = parser.parse_args(argv)
    failures: Dict[str, List[str]] = {}
    for path in args.paths:
        problems = check_file(path)
        if problems:
            failures[str(path)] = problems
        else:
            print(f"ok: {path}")
    for path, problems in failures.items():
        print(f"FAIL: {path}", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
