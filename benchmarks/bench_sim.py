"""Micro-benchmarks for the simulation engine and the network-flow attack.

Measures ``simulate``, ``output_error_rate`` / ``hamming_distance`` and the
attack cost-matrix construction on the seed-equivalent legacy path versus the
compiled vectorized engine, and writes a ``BENCH_sim.json`` perf-trajectory
artifact (wall-clock seconds plus derived throughput) so future PRs can track
regressions::

    PYTHONPATH=src python benchmarks/bench_sim.py            # writes BENCH_sim.json
    PYTHONPATH=src python benchmarks/bench_sim.py --patterns 16384 --repeat 9

The ``seed_equivalent`` numbers replay the original implementation exactly
(networkx-based evaluation ordering + per-gate bigint interpretation), so the
reported speedups are measured against the repository's seed state, not
against the already-accelerated legacy fallback.
"""

from __future__ import annotations

import argparse
import json
import logging
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional

import networkx as nx

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.attacks.network_flow import (  # noqa: E402
    NetworkFlowAttackConfig,
    _direction_penalty,
    _visible_reachability,
    build_cost_matrix,
    network_flow_attack,
)
from repro.circuits import iscas85_netlist  # noqa: E402
from repro.core import ProtectionConfig, protect  # noqa: E402
from repro.netlist import engine  # noqa: E402
from repro.netlist.graph import netlist_to_digraph  # noqa: E402
from repro.netlist.simulate import (  # noqa: E402
    _resolved_inputs,
    _shared_input_patterns,
    _simulate_legacy,
    hamming_distance,
    output_error_rate,
    simulate,
)
from repro.sm.split import extract_feol  # noqa: E402


def _timeit(fn: Callable[[], object], repeat: int) -> float:
    """Median wall-clock seconds of ``repeat`` runs of ``fn``."""
    samples: List[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ---------------------------------------------------------------------------
# Seed-equivalent reference implementations (the pre-engine hot paths).
# ---------------------------------------------------------------------------


def _seed_pseudo_topological_order(netlist) -> List[str]:
    """The seed's networkx-based evaluation ordering."""
    graph = netlist_to_digraph(netlist)
    sequential = [n for n, data in graph.nodes(data=True) if data.get("sequential")]
    comb = graph.copy()
    comb.remove_nodes_from(sequential)
    in_degree = dict(comb.in_degree())
    ready = sorted((n for n, d in in_degree.items() if d == 0), reverse=True)
    scheduled = set(ready)
    order: List[str] = []
    while len(order) < comb.number_of_nodes():
        if not ready:
            victim = min(
                (n for n in in_degree if n not in scheduled),
                key=lambda n: (in_degree[n], n),
            )
            scheduled.add(victim)
            ready.append(victim)
        gate = ready.pop()
        order.append(gate)
        for succ in comb.successors(gate):
            if succ in scheduled:
                continue
            in_degree[succ] -= 1
            if in_degree[succ] <= 0:
                scheduled.add(succ)
                ready.append(succ)
    return sequential + order


def _seed_simulate(netlist, patterns, num_patterns, seed):
    """The seed's simulate(): nx ordering + per-gate bigint interpretation."""
    mask = (1 << num_patterns) - 1
    values = dict(_resolved_inputs(netlist, patterns, num_patterns, seed))
    for gate_name in _seed_pseudo_topological_order(netlist):
        gate = netlist.gates[gate_name]
        if gate.cell.is_sequential:
            continue
        gate_inputs = {}
        for pin in gate.input_pin_names:
            net_name = gate.net_on(pin)
            gate_inputs[pin] = values.get(net_name, 0) if net_name else 0
        outputs = gate.cell.evaluate(gate_inputs, mask)
        for pin, value in outputs.items():
            net_name = gate.net_on(pin)
            if net_name is not None:
                values[net_name] = value & mask
    observed = {}
    for po in netlist.primary_outputs:
        observed[po] = values.get(netlist.output_nets[po], 0)
    return observed


def _seed_output_error_rate(reference, candidate, num_patterns, seed) -> float:
    patterns = _shared_input_patterns(reference, candidate, num_patterns, seed)
    ref = _seed_simulate(reference, patterns, num_patterns, seed)
    cand = _seed_simulate(candidate, patterns, num_patterns, seed)
    error_mask = 0
    for po, ref_value in ref.items():
        error_mask |= ref_value ^ cand[po]
    return 100.0 * bin(error_mask).count("1") / num_patterns


def _seed_hamming_distance(reference, candidate, num_patterns, seed) -> float:
    patterns = _shared_input_patterns(reference, candidate, num_patterns, seed)
    ref = _seed_simulate(reference, patterns, num_patterns, seed)
    cand = _seed_simulate(candidate, patterns, num_patterns, seed)
    differing = sum(
        bin(ref_value ^ cand[po]).count("1") for po, ref_value in ref.items()
    )
    return 100.0 * differing / (num_patterns * len(ref))


def _seed_cost_matrix(view, config):
    """The seed's per-pair cost-matrix construction."""
    import numpy as np

    drivers = view.driver_vpins
    sinks = view.sink_vpins
    half_perimeter = view.layout.floorplan.half_perimeter_um
    reach = _visible_reachability(view) if config.use_loop_hint else None
    cache: Dict[str, set] = {}

    def descendants(gate):
        if gate not in cache:
            if reach is None or gate not in reach:
                cache[gate] = set()
            else:
                cache[gate] = set(nx.descendants(reach, gate))
        return cache[gate]

    base_costs = np.zeros((len(sinks), len(drivers)))
    excluded = 0
    for si, sink in enumerate(sinks):
        for di, driver in enumerate(drivers):
            distance = (
                abs(sink.position.x - driver.position.x)
                + abs(sink.position.y - driver.position.y)
            )
            pair_cost = distance
            infeasible = False
            if config.use_direction_hint:
                penalty, sink_angle = _direction_penalty(driver, sink)
                pair_cost += config.direction_weight * half_perimeter * 0.1 * penalty
                if (
                    sink_angle > config.direction_tolerance_deg
                    and distance > config.direction_min_distance_um
                ):
                    infeasible = True
            if distance > config.timing_fraction * half_perimeter:
                pair_cost += config.timing_penalty
            if (
                config.use_load_hint
                and driver.max_load_ff > 0
                and sink.capacitance_ff > driver.max_load_ff
            ):
                infeasible = True
            if sink.gate is not None and driver.gate is not None:
                if sink.gate == driver.gate:
                    infeasible = True
                elif config.use_loop_hint and driver.gate in descendants(sink.gate):
                    infeasible = True
            if infeasible:
                pair_cost = config.infeasible_cost
                excluded += 1
            base_costs[si, di] = pair_cost
    return base_costs, excluded


# ---------------------------------------------------------------------------
# Benchmark cases
# ---------------------------------------------------------------------------


def bench_simulation(benchmark: str, num_patterns: int, repeat: int) -> Dict[str, Dict]:
    netlist = iscas85_netlist(benchmark, seed=1)
    candidate = netlist.copy("candidate")
    gate = next(
        g for g in candidate.gates.values()
        if g.input_pin_names and g.net_on(g.input_pin_names[0]) is not None
    )
    current = gate.net_on(gate.input_pin_names[0])
    other = next(
        name for name, net in candidate.nets.items()
        if name != current and net.has_driver()
    )
    candidate.move_sink(gate.name, gate.input_pin_names[0], other)
    num_gates = netlist.num_gates

    results: Dict[str, Dict] = {}

    def record(name: str, seconds: float, work_ops: float, extra: Optional[Dict] = None):
        entry = {
            "wall_clock_s": round(seconds, 6),
            "ops_per_s": round(work_ops / seconds, 1) if seconds > 0 else None,
        }
        if extra:
            entry.update(extra)
        results[name] = entry

    gate_evals = float(num_gates * num_patterns)

    record(
        "simulate_seed_equivalent",
        _timeit(lambda: _seed_simulate(netlist, None, num_patterns, 1), repeat),
        gate_evals,
    )
    record(
        "simulate_legacy_interpreter",
        _timeit(
            lambda: _simulate_legacy(
                netlist, _resolved_inputs(netlist, None, num_patterns, 1),
                num_patterns, 0,
            ),
            repeat,
        ),
        gate_evals,
    )
    simulate(netlist, None, num_patterns, 1)  # compile + specialize once
    record(
        "simulate_engine_warm",
        _timeit(lambda: simulate(netlist, None, num_patterns, 1), repeat),
        gate_evals,
    )

    pair_evals = float(2 * num_gates * num_patterns)
    record(
        "oer_seed_equivalent",
        _timeit(
            lambda: _seed_output_error_rate(netlist, candidate, num_patterns, 1), repeat
        ),
        pair_evals,
    )
    record(
        "hd_seed_equivalent",
        _timeit(
            lambda: _seed_hamming_distance(netlist, candidate, num_patterns, 1), repeat
        ),
        pair_evals,
    )

    def oer_cold():
        engine._PLAN_CACHE.clear()
        return output_error_rate(netlist, candidate, num_patterns, 1)

    record("oer_engine_cold", _timeit(oer_cold, repeat), pair_evals)
    output_error_rate(netlist, candidate, num_patterns, 1)
    output_error_rate(netlist, candidate, num_patterns, 1)
    record(
        "oer_engine_warm",
        _timeit(lambda: output_error_rate(netlist, candidate, num_patterns, 1), repeat),
        pair_evals,
    )
    record(
        "hd_engine_warm",
        _timeit(lambda: hamming_distance(netlist, candidate, num_patterns, 1), repeat),
        pair_evals,
    )

    # Bit-exactness of the benchmarked paths, asserted on every run: the
    # engine must reproduce the seed implementation's floats exactly.
    assert output_error_rate(
        netlist, candidate, num_patterns, 1
    ) == _seed_output_error_rate(netlist, candidate, num_patterns, 1)
    assert hamming_distance(
        netlist, candidate, num_patterns, 1
    ) == _seed_hamming_distance(netlist, candidate, num_patterns, 1)
    return results


def bench_attack(repeat: int) -> Dict[str, Dict]:
    netlist = iscas85_netlist("c432", seed=1)
    artefacts = protect(
        netlist,
        ProtectionConfig(lift_layer=6, swap_fraction_steps=(0.08,),
                         oer_patterns=512, seed=1),
    )
    view = extract_feol(artefacts.protected_layout, 4)
    config = NetworkFlowAttackConfig()

    results: Dict[str, Dict] = {}
    pairs = float(len(view.sink_vpins) * len(view.driver_vpins))
    seed_time = _timeit(lambda: _seed_cost_matrix(view, config), repeat)
    vec_time = _timeit(lambda: build_cost_matrix(view, config), repeat)
    results["cost_matrix_seed_equivalent"] = {
        "wall_clock_s": round(seed_time, 6),
        "ops_per_s": round(pairs / seed_time, 1),
        "pairs": int(pairs),
    }
    results["cost_matrix_vectorized"] = {
        "wall_clock_s": round(vec_time, 6),
        "ops_per_s": round(pairs / vec_time, 1),
        "pairs": int(pairs),
    }
    results["network_flow_attack_full"] = {
        "wall_clock_s": round(_timeit(lambda: network_flow_attack(view, config), repeat), 6),
        "ops_per_s": None,
    }

    import numpy as np

    seed_costs, seed_excluded = _seed_cost_matrix(view, config)
    vec_costs, vec_excluded = build_cost_matrix(view, config)
    assert seed_excluded == vec_excluded
    assert np.allclose(seed_costs, vec_costs, rtol=1e-12, atol=1e-9)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="c1908",
                        help="ISCAS benchmark for the simulation cases")
    parser.add_argument("--patterns", type=int, default=4096,
                        help="patterns per OER/HD evaluation")
    parser.add_argument("--repeat", type=int, default=5,
                        help="runs per measurement (median is reported)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sim.json"),
                        help="path of the JSON artifact")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (few patterns, one repetition)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.patterns = 256
        args.repeat = 1

    sim_results = bench_simulation(args.benchmark, args.patterns, args.repeat)
    attack_results = bench_attack(args.repeat)

    def speedup(baseline: str, contender: str, table: Dict[str, Dict]) -> float:
        return round(
            table[baseline]["wall_clock_s"] / table[contender]["wall_clock_s"], 2
        )

    from repro.utils.host import host_metadata

    generated_utc = datetime.now(timezone.utc).isoformat(timespec="seconds")
    payload = {
        "meta": {
            "generated_utc": generated_utc,
            "host": host_metadata(generated_utc),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "benchmark": args.benchmark,
            "num_patterns": args.patterns,
            "repeat": args.repeat,
            "ops_unit": "gate-pattern evaluations (simulation) / candidate pairs (attack)",
        },
        "simulation": sim_results,
        "attack": attack_results,
        "speedups_vs_seed": {
            "simulate": speedup("simulate_seed_equivalent", "simulate_engine_warm", sim_results),
            "oer_warm": speedup("oer_seed_equivalent", "oer_engine_warm", sim_results),
            "oer_cold": speedup("oer_seed_equivalent", "oer_engine_cold", sim_results),
            "hd_warm": speedup("hd_seed_equivalent", "hd_engine_warm", sim_results),
            "attack_cost_matrix": speedup(
                "cost_matrix_seed_equivalent", "cost_matrix_vectorized", attack_results
            ),
        },
    }
    output = Path(args.output)
    # Sorted keys keep the committed artifact (and CI log diffs) stable.
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload["speedups_vs_seed"], indent=2))
    logging.getLogger("repro.bench.sim").info("wrote %s", output)
    return 0


if __name__ == "__main__":
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    sys.exit(main())
