"""Benchmarks regenerating the paper's Figures 4–6 and the headline numbers."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import (
    figure4_distance_distributions,
    figure5_wirelength_layers,
    figure6_ppa,
    headline,
)
from repro.utils.tables import format_table


def test_figure4_distance_distributions(benchmark, bench_config):
    """Fig. 4: distance distributions for superblue18 (percentile view)."""
    table = run_once(
        benchmark,
        lambda: figure4_distance_distributions.run(bench_config, benchmark="superblue18"),
    )
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    # The proposed distribution's median (p50 column) exceeds the original's.
    p50_index = table.columns.index("p50")
    assert rows["Proposed"][p50_index] > rows["Original"][p50_index]


def test_figure5_wirelength_layers(benchmark, bench_config):
    """Fig. 5: per-layer wirelength shares of the randomized nets."""
    table = run_once(benchmark, figure5_wirelength_layers.run, bench_config)
    print()
    print(format_table(table))
    above_index = table.columns.index("Above split")
    for benchmark_name in bench_config.superblue_benchmarks:
        rows = {row[1]: row for row in table.rows if row[0] == benchmark_name}
        assert rows["Proposed"][above_index] > rows["Original"][above_index]
        assert rows["Proposed"][above_index] > 90.0


def test_figure6_ppa(benchmark, bench_config):
    """Fig. 6: PPA overheads versus the layout-randomization defense."""
    table = run_once(benchmark, figure6_ppa.run, bench_config)
    print()
    print(format_table(table))
    average = table.rows[-1]
    # Zero area overhead, bounded power/delay overhead (paper: 0 / 11.5 / 10 %).
    assert average[1] == 0.0
    assert average[2] < 30.0
    assert average[3] < 30.0


def test_headline_security(benchmark, bench_config):
    """Sec. 5.2 headline: 0 % CCR / ~100 % OER / ~40 % HD for the proposed scheme."""
    table = run_once(benchmark, headline.run, bench_config)
    print()
    print(format_table(table))
    rows = {row[0]: row for row in table.rows}
    assert rows["Proposed"][1] <= 5.0      # CCR ≈ 0
    assert rows["Proposed"][2] >= 60.0     # OER high
    assert rows["Original"][1] >= 60.0     # original stays vulnerable
