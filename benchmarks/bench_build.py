"""Micro-benchmarks for the vectorized place-and-route build path.

Measures the retained seed implementations (``place_reference`` /
``route_reference``, per-object Python loops) against the vectorized column
builders that now back ``Workspace.prewarm``, plus the amortized per-seed
cost of a Monte-Carlo seed sweep versus the sequential single-seed baseline,
and writes a ``BENCH_build.json`` perf-trajectory artifact next to
``BENCH_sim.json`` / ``BENCH_layout.json``::

    PYTHONPATH=src python benchmarks/bench_build.py             # writes BENCH_build.json
    PYTHONPATH=src python benchmarks/bench_build.py --scale 0.02 --seeds 8
    PYTHONPATH=src python benchmarks/bench_build.py --smoke     # CI-sized run

Every vectorized path is asserted **bit-exact** against its reference before
timing; the sweep section runs the ``original`` scheme (pure place + route,
the paths this PR vectorizes) through ``Workspace.run_sweeps`` and compares
the amortized per-seed wall-clock against building each seed sequentially
with the reference implementations.

The script is headless (no plotting, no interactive dependencies) and emits
JSON with sorted keys so CI diffs stay stable.
"""

from __future__ import annotations

import argparse
import gc
import json
import logging
import platform
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.spec import ScenarioSpec                      # noqa: E402
from repro.api.workspace import Workspace                     # noqa: E402
from repro.store import ArtifactStore                         # noqa: E402
from repro.utils.host import host_metadata                    # noqa: E402

_log = logging.getLogger("repro.bench.build")
from repro.circuits import iscas85_netlist                    # noqa: E402
from repro.circuits.superblue import superblue_netlist        # noqa: E402
from repro.layout.floorplan import build_floorplan            # noqa: E402
from repro.layout.placer import (                             # noqa: E402
    PlacerConfig,
    place,
    place_reference,
)
from repro.layout.router import route, route_reference        # noqa: E402


def _timeit(fn: Callable[[], object], repeat: int) -> float:
    """Best wall-clock of ``repeat`` runs, GC paused while timing.

    Both build paths allocate hundreds of thousands of small geometry
    objects per run; leaving the cyclic GC enabled makes collection pauses
    (triggered at allocation thresholds, attributed to whichever run crosses
    them) the dominant noise source.  Collecting up front and disabling the
    GC inside the timed region is the same policy pytest-benchmark applies.
    The minimum is the right estimator here (same rationale as
    :mod:`timeit`): scheduler and allocator interference only ever *add*
    time, so the fastest sample is the closest to the true cost.
    """
    samples: List[float] = []
    was_enabled = gc.isenabled()
    for _ in range(repeat):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        finally:
            if was_enabled:
                gc.enable()
    return min(samples)


def _assert_equal_placements(a, b) -> None:
    assert list(a.gate_positions) == list(b.gate_positions), "gate order differs"
    for name, pos in a.gate_positions.items():
        other = b.gate_positions[name]
        assert pos.x == other.x and pos.y == other.y, f"{name} differs"
    assert a.port_positions == b.port_positions


def _assert_equal_routings(a, b) -> None:
    assert list(a) == list(b), "net order differs"
    for name in a:
        assert a[name].driver_vias == b[name].driver_vias, name
        assert a[name].connections == b[name].connections, name


def bench_build_path(benchmark: str, scale: float, seed: int,
                     refinement_rounds: int, repeat: int) -> Dict[str, object]:
    """Placer + router reference-vs-vectorized on one netlist."""
    if benchmark.startswith("superblue"):
        netlist = superblue_netlist(benchmark, scale=scale, seed=seed)
    else:
        netlist = iscas85_netlist(benchmark, seed=seed)
    placer_config = PlacerConfig(seed=seed, refinement_rounds=refinement_rounds)
    floorplan = build_floorplan(netlist, 0.70)

    reference_placement = place_reference(netlist, floorplan, config=placer_config)
    vectorized_placement = place(netlist, floorplan, config=placer_config)
    _assert_equal_placements(reference_placement, vectorized_placement)
    place_ref_s = _timeit(
        lambda: place_reference(netlist, floorplan, config=placer_config), repeat
    )
    place_vec_s = _timeit(
        lambda: place(netlist, floorplan, config=placer_config), repeat
    )

    reference_routing = route_reference(netlist, vectorized_placement)
    vectorized_routing = route(netlist, vectorized_placement)
    _assert_equal_routings(reference_routing, vectorized_routing)
    route_ref_s = _timeit(lambda: route_reference(netlist, vectorized_placement), repeat)
    route_vec_s = _timeit(lambda: route(netlist, vectorized_placement), repeat)

    return {
        "benchmark": benchmark,
        "scale": scale if benchmark.startswith("superblue") else None,
        "num_gates": netlist.num_gates,
        "num_nets": netlist.num_nets,
        "refinement_rounds": refinement_rounds,
        "place_reference_s": round(place_ref_s, 4),
        "place_vectorized_s": round(place_vec_s, 4),
        "place_speedup": round(place_ref_s / place_vec_s, 2),
        "route_reference_s": round(route_ref_s, 4),
        "route_vectorized_s": round(route_vec_s, 4),
        "route_speedup": round(route_ref_s / route_vec_s, 2),
        "build_speedup": round(
            (place_ref_s + route_ref_s) / (place_vec_s + route_vec_s), 2
        ),
    }


def bench_seed_sweep(benchmark: str, scale: float, num_seeds: int,
                     jobs: int, repeat: int) -> Dict[str, object]:
    """Amortized per-seed sweep cost vs the sequential single-seed baseline.

    The baseline builds every seed one after another with the *reference*
    place/route (the pre-vectorization build path); the sweep runs the same
    seeds through ``Workspace.run_sweeps`` (vectorized builds batched through
    the prewarm pool).  Both sides are re-run ``repeat`` times on fresh
    caches and the medians are compared.
    """
    seeds = list(range(num_seeds))
    scale_arg = scale if benchmark.startswith("superblue") else None

    def sequential_reference() -> None:
        for seed in seeds:
            if scale_arg is not None:
                netlist = superblue_netlist(benchmark, scale=scale_arg, seed=seed)
            else:
                netlist = iscas85_netlist(benchmark, seed=seed)
            floorplan = build_floorplan(netlist, 0.70)
            placement = place_reference(
                netlist, floorplan, config=PlacerConfig(seed=seed)
            )
            route_reference(netlist, placement)

    spec = ScenarioSpec(
        benchmark=benchmark, scheme="original", scale=scale_arg, seeds=seeds,
    )

    def sweep_run() -> None:
        # A fresh workspace per run: sweeps are memoized per workspace, and
        # the point is the cold per-seed build cost.
        sweep = Workspace().run_sweep(spec, jobs=jobs)
        assert sweep.num_seeds == num_seeds

    sequential_s = _timeit(sequential_reference, repeat)
    sweep_s = _timeit(sweep_run, repeat)

    return {
        "benchmark": benchmark,
        "scale": scale_arg,
        "num_seeds": num_seeds,
        "jobs": jobs,
        "sequential_reference_s_total": round(sequential_s, 4),
        "sequential_reference_s_per_seed": round(sequential_s / num_seeds, 4),
        "sweep_s_total": round(sweep_s, 4),
        "sweep_s_per_seed": round(sweep_s / num_seeds, 4),
        "amortized_speedup": round(sequential_s / sweep_s, 2),
    }


def bench_seed_batch(benchmark: str, scale: float, batch_sizes: List[int],
                     jobs_options: List[int], repeat: int) -> List[Dict[str, object]]:
    """Seed-batched build engine vs the full-build-per-seed baseline.

    Every sweep pins ``netlist_seed`` so all seeds place/route the *same*
    netlist — the configuration the batched engine amortizes: one DFS/
    ordering skeleton, one routing skeleton and one floorplan shared across
    the batch.  The baseline mirrors the historical per-seed pool path:
    every seed regenerates the netlist and builds with the reference
    kernels.  Two batched timings are recorded per batch size: the build
    engine itself (``build_s_*`` / ``amortized_speedup`` — one netlist
    generation plus ``build_original_batch``, the work ``run_sweeps``
    amortizes) and the full workspace sweep including scenario evaluation
    (``sweep_s_*`` / ``sweep_speedup``).  Before timing, every batched seed
    is asserted bit-exact
    against its reference build; the pickled-payload comparison measures the
    bytes one seed ships across the pool boundary — a full ``SchemeBuild``
    artefact versus the coordinate delta of the skeleton/delta protocol.
    """
    import pickle

    from repro.api.schemes import (
        OriginalParams,
        batch_placement_deltas,
        build_original,
        build_original_batch,
        builds_from_placement_deltas,
    )

    scale_arg = scale if benchmark.startswith("superblue") else None
    netlist_seed = 0
    if scale_arg is not None:
        netlist = superblue_netlist(benchmark, scale=scale_arg, seed=netlist_seed)
    else:
        netlist = iscas85_netlist(benchmark, seed=netlist_seed)
    params = OriginalParams()

    # -- bit-exactness gate (largest batch, every seed) ---------------------
    check_seeds = list(range(max(batch_sizes)))
    deltas = batch_placement_deltas(netlist, params, check_seeds)
    batched = builds_from_placement_deltas(netlist, params, deltas)
    for seed, built in zip(check_seeds, batched):
        reference = build_original(netlist, params, seed)
        _assert_equal_placements(
            reference.layout.placement, built.layout.placement
        )
        _assert_equal_routings(reference.layout.routing, built.layout.routing)

    # -- pool payload bytes per seed ----------------------------------------
    full_bytes = len(pickle.dumps(build_original(netlist, params, 0)))
    delta_bytes = len(pickle.dumps({
        "seeds": deltas["seeds"][:1], "orders": deltas["orders"][:1],
        "xs": deltas["xs"][:1], "ys": deltas["ys"][:1],
    }))

    # Release the gate's artefacts before timing: keeping dozens of full
    # builds alive degrades allocator locality for every timed sample.
    del batched, reference, deltas
    gc.collect()

    results: List[Dict[str, object]] = []
    for num_seeds in batch_sizes:
        seeds = list(range(num_seeds))

        def sequential_reference() -> None:
            for _seed in seeds:
                if scale_arg is not None:
                    fresh = superblue_netlist(
                        benchmark, scale=scale_arg, seed=netlist_seed
                    )
                else:
                    fresh = iscas85_netlist(benchmark, seed=netlist_seed)
                floorplan = build_floorplan(fresh, 0.70)
                placement = place_reference(
                    fresh, floorplan, config=PlacerConfig(seed=_seed)
                )
                route_reference(fresh, placement)

        def build_engine() -> None:
            # The sweep's amortized build: exactly what run_sweeps executes
            # per batch group at jobs=1 — one netlist generation plus the
            # seed-batched scheme build (shared floorplan / DFS structure /
            # routing skeleton, per-seed arrays).
            if scale_arg is not None:
                fresh = superblue_netlist(
                    benchmark, scale=scale_arg, seed=netlist_seed
                )
            else:
                fresh = iscas85_netlist(benchmark, seed=netlist_seed)
            build_original_batch(fresh, params, seeds)

        sequential_s = _timeit(sequential_reference, repeat)
        build_s = _timeit(build_engine, repeat)
        spec = ScenarioSpec(
            benchmark=benchmark, scheme="original", scale=scale_arg,
            seeds=seeds, netlist_seed=netlist_seed,
        )
        for jobs in jobs_options:

            def sweep_run() -> None:
                sweep = Workspace().run_sweep(spec, jobs=jobs)
                assert sweep.num_seeds == num_seeds

            sweep_s = _timeit(sweep_run, repeat)
            results.append({
                "benchmark": benchmark,
                "scale": scale_arg,
                "num_seeds": num_seeds,
                "jobs": jobs,
                "sequential_reference_s_total": round(sequential_s, 4),
                "sequential_reference_s_per_seed": round(
                    sequential_s / num_seeds, 4
                ),
                "build_s_total": round(build_s, 4),
                "build_s_per_seed": round(build_s / num_seeds, 4),
                "amortized_speedup": round(sequential_s / build_s, 2),
                "sweep_s_total": round(sweep_s, 4),
                "sweep_s_per_seed": round(sweep_s / num_seeds, 4),
                "sweep_speedup": round(sequential_s / sweep_s, 2),
                "full_build_payload_bytes_per_seed": full_bytes,
                "delta_payload_bytes_per_seed": delta_bytes,
                "payload_reduction": round(full_bytes / delta_bytes, 1),
            })
    return results


def bench_store(benchmark: str, scale: float, num_seeds: int,
                repeat: int, scheme: str = "original") -> Dict[str, object]:
    """Cold-build sweep vs replaying the same sweep from the disk store.

    The cold side runs a seed sweep through a fresh workspace writing into
    an empty artefact store; the warm side reruns the identical sweep in
    another fresh workspace against the now-populated store, so every
    build is a disk hit (decode + checksum) instead of a place-and-route.
    The replayed sweep is asserted bit-identical to the cold one before
    timing, and the warm run is asserted to rebuild nothing.

    ``scheme`` picks the build the store amortizes: ``original`` is the
    cheapest possible build (bare place-and-route — the store's worst
    case), while a protected scheme such as ``synergistic`` pays the full
    defense flow on the cold side, which is what real sweeps replay.
    """
    scale_arg = scale if benchmark.startswith("superblue") else None
    spec = ScenarioSpec(
        benchmark=benchmark, scheme=scheme, scale=scale_arg,
        seeds=list(range(num_seeds)), netlist_seed=0,
    )

    def strip(payload):
        if isinstance(payload, dict):
            return {k: strip(v) for k, v in payload.items() if k != "elapsed_s"}
        if isinstance(payload, list):
            return [strip(v) for v in payload]
        return payload

    root = Path(tempfile.mkdtemp(prefix="bench_store."))
    try:
        # Correctness gate: a store replay reproduces the cold sweep exactly
        # and never falls back to a rebuild.
        cold_ws = Workspace(jobs=1, store=ArtifactStore(root))
        reference = strip(cold_ws.run_sweep(spec).to_dict())
        warm_ws = Workspace(jobs=1, store=ArtifactStore(root))
        replayed = strip(warm_ws.run_sweep(spec).to_dict())
        assert replayed == reference, "store replay diverged from cold sweep"
        warm_stats = warm_ws.stats()
        assert warm_stats["store_hits"] == num_seeds, warm_stats
        assert warm_stats["store_misses"] == 0, warm_stats
        store_bytes = ArtifactStore(root, readonly=True).total_bytes()

        def cold_run() -> None:
            scratch = Path(tempfile.mkdtemp(prefix="bench_store.cold."))
            try:
                Workspace(jobs=1, store=ArtifactStore(scratch)).run_sweep(spec)
            finally:
                shutil.rmtree(scratch, ignore_errors=True)

        def warm_run() -> None:
            Workspace(jobs=1, store=ArtifactStore(root)).run_sweep(spec)

        cold_s = _timeit(cold_run, repeat)
        warm_s = _timeit(warm_run, repeat)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "benchmark": benchmark,
        "scale": scale_arg,
        "scheme": scheme,
        "num_seeds": num_seeds,
        "cold_build_s_total": round(cold_s, 4),
        "cold_build_s_per_seed": round(cold_s / num_seeds, 4),
        "warm_disk_hit_s_total": round(warm_s, 4),
        "warm_disk_hit_s_per_seed": round(warm_s / num_seeds, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "store_bytes": store_bytes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="superblue12",
                        help="design for the place/route sections")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="superblue down-scaling factor")
    parser.add_argument("--seeds", type=int, default=3,
                        help="seeds in the sweep section")
    parser.add_argument("--sweep-benchmark", default="superblue18",
                        help="design for the sweep section")
    parser.add_argument("--sweep-scale", type=float, default=0.02,
                        help="superblue scale for the sweep section")
    parser.add_argument("--jobs", type=int, default=1,
                        help="prewarm worker processes for the sweep section")
    # Measured most-allocation-sensitive first: the 8-seed row is the
    # tracked amortization checkpoint, so it times on the freshest heap.
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=[8, 16, 4, 1],
                        help="batch sizes for the seed_batch section")
    parser.add_argument("--batch-jobs", type=int, default=4,
                        help="pooled worker count for the seed_batch section "
                             "(measured alongside jobs=1)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="runs per measurement (best run is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small scales, 2 seeds)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_build.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale = 0.002
        args.sweep_scale = 0.001
        args.seeds = 2
        args.repeat = 1
        args.batch_sizes = [1, 2]
        args.batch_jobs = 2

    # The seed_batch section runs first: its amortized-speedup numbers are
    # the most allocation-sensitive, so they get the cleanest heap.
    jobs_options = [1]
    if args.batch_jobs > 1:
        jobs_options.append(args.batch_jobs)
    seed_batch = bench_seed_batch(
        args.sweep_benchmark, args.sweep_scale, args.batch_sizes,
        jobs_options, repeat=args.repeat,
    )
    builds = [
        bench_build_path(args.benchmark, args.scale, seed=1,
                         refinement_rounds=0, repeat=args.repeat),
        bench_build_path(args.benchmark, args.scale, seed=1,
                         refinement_rounds=2, repeat=args.repeat),
    ]
    sweep = bench_seed_sweep(
        args.sweep_benchmark, args.sweep_scale, args.seeds, args.jobs,
        repeat=args.repeat,
    )
    # Two store rows bracket the build-cost spectrum: "original" is a bare
    # place-and-route (the cheapest build the store can ever amortize) and
    # "synergistic" is the paper's concerted defense flow (what protected
    # sweeps actually replay).
    store = [
        bench_store(args.sweep_benchmark, args.sweep_scale, args.seeds,
                    repeat=args.repeat, scheme=scheme)
        for scheme in ("original", "synergistic")
    ]

    generated_utc = datetime.now(timezone.utc).isoformat(timespec="seconds")
    payload = {
        "meta": {
            "generated_utc": generated_utc,
            "host": host_metadata(generated_utc),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "notes": (
                "Reference = retained seed implementations "
                "(place_reference/route_reference, per-object Python loops); "
                "vectorized = the columnar builders behind Workspace.prewarm. "
                "All vectorized paths are asserted bit-exact against the "
                "references before timing.  The sweep section compares "
                "Workspace.run_sweeps (vectorized builds, batched prewarm) "
                "against building each seed sequentially with the reference "
                "implementations.  The store section replays the sweep from "
                "a populated repro.store artefact store (disk hits, asserted "
                "bit-identical to the cold build) against cold-building it."
            ),
        },
        "build_path": builds,
        "seed_sweep": sweep,
        "seed_batch": seed_batch,
        "store": store,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _log.info("wrote %s", args.output)
    for entry in builds:
        _log.info(
            "%s rounds=%s: place x%s, route x%s, build x%s",
            entry["benchmark"], entry["refinement_rounds"],
            entry["place_speedup"], entry["route_speedup"],
            entry["build_speedup"],
        )
    _log.info(
        "sweep %s@%s x%s seeds: %ss/seed vs sequential %ss/seed (x%s)",
        sweep["benchmark"], sweep["scale"], sweep["num_seeds"],
        sweep["sweep_s_per_seed"], sweep["sequential_reference_s_per_seed"],
        sweep["amortized_speedup"],
    )
    for entry in seed_batch:
        _log.info(
            "seed_batch %s@%s x%s seeds jobs=%s: build %ss/seed (x%s), "
            "sweep %ss/seed (x%s) vs sequential %ss/seed, payload x%s smaller",
            entry["benchmark"], entry["scale"], entry["num_seeds"],
            entry["jobs"], entry["build_s_per_seed"],
            entry["amortized_speedup"], entry["sweep_s_per_seed"],
            entry["sweep_speedup"], entry["sequential_reference_s_per_seed"],
            entry["payload_reduction"],
        )
    for entry in store:
        _log.info(
            "store %s@%s %s x%s seeds: warm disk hit %ss/seed vs cold build "
            "%ss/seed (x%s, %d bytes on disk)",
            entry["benchmark"], entry["scale"], entry["scheme"],
            entry["num_seeds"], entry["warm_disk_hit_s_per_seed"],
            entry["cold_build_s_per_seed"], entry["warm_speedup"],
            entry["store_bytes"],
        )
    return 0


if __name__ == "__main__":
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    sys.exit(main())
