"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on a reduced
configuration (fewer benchmarks, scaled superblue designs) so the whole suite
runs in minutes.  The printed tables are the deliverable; the timing numbers
from pytest-benchmark document the cost of each experiment.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig

try:  # pragma: no cover - plugin presence is environment-dependent
    import pytest_benchmark  # noqa: F401
    _HAVE_PYTEST_BENCHMARK = True
except ImportError:
    _HAVE_PYTEST_BENCHMARK = False


if not _HAVE_PYTEST_BENCHMARK:
    class _BenchmarkShim:
        """Headless stand-in for the pytest-benchmark fixture.

        Runs the benched callable exactly once without recording timings, so
        `pytest benchmarks/` stays runnable (and CI-smokeable) when the
        plugin is not installed.
        """

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture()
    def benchmark():
        return _BenchmarkShim()


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Reduced experiment configuration used by every benchmark."""
    return ExperimentConfig(
        iscas_benchmarks=("c432", "c880", "c1908"),
        superblue_benchmarks=("superblue18", "superblue5"),
        superblue_scale=0.0025,
        iscas_split_layers=(3, 4, 5),
        num_patterns=512,
        iscas_swap_fractions=(0.05,),
        superblue_swap_fractions=(0.02,),
        seed=1,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
