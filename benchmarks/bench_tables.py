"""Benchmarks regenerating the paper's Tables 1–6.

Each benchmark prints the regenerated table (the same rows the paper
reports) and records how long the regeneration takes.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import (
    table1_distances,
    table2_vias,
    table3_crouting,
    table4_placement_schemes,
    table5_routing_schemes,
    table6_magana,
)
from repro.utils.tables import format_table


def bench_table(benchmark, bench_config, module):
    table = run_once(benchmark, module.run, bench_config)
    print()
    print(format_table(table))
    return table


def test_table1_distances(benchmark, bench_config):
    """Table 1: distances between connected gates (original/lifted/proposed)."""
    table = bench_table(benchmark, bench_config, table1_distances)
    proposed = [row for row in table.rows if row[1] == "Proposed"]
    original = [row for row in table.rows if row[1] == "Original"]
    # Shape check: the proposed layouts separate truly connected gates.
    assert all(p[2] > o[2] for p, o in zip(proposed, original))


def test_table2_vias(benchmark, bench_config):
    """Table 2: additional vias of lifted/proposed layouts over the original."""
    table = bench_table(benchmark, bench_config, table2_vias)
    lifted_totals = [row[-1] for row in table.rows if row[1] == "Lifted (%)"]
    proposed_totals = [row[-1] for row in table.rows if row[1] == "Proposed (%)"]
    assert all(p > l > 0 for p, l in zip(proposed_totals, lifted_totals))


def test_table3_crouting(benchmark, bench_config):
    """Table 3: crouting attack vpins and candidate-list sizes."""
    table = bench_table(benchmark, bench_config, table3_crouting)
    assert all(row[2] > 0 for row in table.rows)


def test_table4_placement_schemes(benchmark, bench_config):
    """Table 4: CCR/OER/HD versus placement-perturbation defenses."""
    table = bench_table(benchmark, bench_config, table4_placement_schemes)
    for row in table.rows:
        orig_ccr, proposed_ccr = row[1], row[9]
        assert proposed_ccr <= 10.0
        assert orig_ccr > proposed_ccr


def test_table5_routing_schemes(benchmark, bench_config):
    """Table 5: CCR/OER/HD versus routing-perturbation defenses."""
    table = bench_table(benchmark, bench_config, table5_routing_schemes)
    for row in table.rows:
        orig_ccr, proposed_ccr = row[1], row[9]
        assert proposed_ccr <= 10.0
        assert orig_ccr > proposed_ccr


def test_table6_magana(benchmark, bench_config):
    """Table 6: additional V67/V78 versus the routing-blockage defense."""
    table = bench_table(benchmark, bench_config, table6_magana)
    average = table.rows[-1]
    assert average[0] == "Average"
    assert average[3] > 0 and average[4] > 0
